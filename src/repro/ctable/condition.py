"""The condition language attached to c-table tuples.

A condition (paper, §3) is a boolean combination of *atoms* over the
c-domain.  Two atom forms cover everything the paper uses:

* :class:`Comparison` — ``t1 op t2`` with ``op`` one of
  ``= != < <= > >=`` and ``t1``/``t2`` constants or c-variables
  (e.g. ``ȳ ≠ 1.2.3.4``);
* :class:`LinearAtom` — ``c1·x̄1 + … + cn·x̄n op k`` over numeric
  c-variables (e.g. the failure-pattern condition ``x̄ + ȳ + z̄ = 1``).

Conditions are immutable trees.  :data:`TRUE` is the empty condition of
the paper's third Table 2 tuple.  Satisfiability, implication and
simplification live in :mod:`repro.solver`; this module only provides
structure: construction, substitution, free variables, evaluation under a
total assignment, and normalization helpers.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Sequence, Tuple

from .terms import Constant, CVariable, SlotPickleMixin, Term, Variable, as_term

__all__ = [
    "Condition",
    "Comparison",
    "LinearAtom",
    "And",
    "Or",
    "Not",
    "TrueCond",
    "FalseCond",
    "TRUE",
    "FALSE",
    "Op",
    "NEGATED_OP",
    "eq",
    "ne",
    "lt",
    "le",
    "gt",
    "ge",
    "conjoin",
    "disjoin",
]

#: Comparison operators in canonical spelling.
Op = str

_OPS: Tuple[Op, ...] = ("=", "!=", "<", "<=", ">", ">=")

#: Operator produced by negating the key operator.
NEGATED_OP: Dict[Op, Op] = {
    "=": "!=",
    "!=": "=",
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
}

_FLIPPED_OP: Dict[Op, Op] = {
    "=": "=",
    "!=": "!=",
    "<": ">",
    "<=": ">=",
    ">": "<",
    ">=": "<=",
}


def _apply_op(op: Op, a, b) -> bool:
    if op == "=":
        return a == b
    if op == "!=":
        return a != b
    # Ordering comparisons require mutually comparable payloads.
    if op == "<":
        return a < b
    if op == "<=":
        return a <= b
    if op == ">":
        return a > b
    if op == ">=":
        return a >= b
    raise ValueError(f"unknown operator {op!r}")


class Condition(SlotPickleMixin):
    """Abstract base of condition trees."""

    __slots__ = ()

    def cvariables(self) -> FrozenSet[CVariable]:
        """All c-variables occurring in this condition (cached)."""
        cached = getattr(self, "_cvars", None)
        if cached is not None:
            return cached
        out: set = set()
        self._collect_cvars(out)
        result = frozenset(out)
        try:
            object.__setattr__(self, "_cvars", result)
        except AttributeError:
            pass  # TrueCond/FalseCond carry no cache slot
        return result

    def _collect_cvars(self, out: set) -> None:
        raise NotImplementedError

    def substitute(self, mapping: Mapping[CVariable, Term]) -> "Condition":
        """Replace c-variables by other terms (used by valuation)."""
        raise NotImplementedError

    def evaluate(self, assignment: Mapping[CVariable, Constant]) -> bool:
        """Truth value under a *total* assignment of the free c-variables.

        Raises ``KeyError`` if some free c-variable is unassigned.
        """
        raise NotImplementedError

    def atoms(self) -> Iterator["Condition"]:
        """Yield the atomic sub-conditions (comparisons and linear atoms)."""
        raise NotImplementedError

    def negate(self) -> "Condition":
        """Structural negation with atom-level push-down where trivial."""
        return Not(self)

    # -- convenience boolean composition ---------------------------------

    def __and__(self, other: "Condition") -> "Condition":
        return conjoin([self, other])

    def __or__(self, other: "Condition") -> "Condition":
        return disjoin([self, other])

    def __invert__(self) -> "Condition":
        return self.negate()


class TrueCond(Condition):
    """The empty (always-true) condition."""

    __slots__ = ()

    def _collect_cvars(self, out: set) -> None:
        pass

    def substitute(self, mapping) -> "Condition":
        return self

    def evaluate(self, assignment) -> bool:
        return True

    def atoms(self):
        return iter(())

    def negate(self) -> "Condition":
        return FALSE

    def __eq__(self, other) -> bool:
        return isinstance(other, TrueCond)

    def __hash__(self) -> int:
        return hash("TRUE")

    def __repr__(self) -> str:
        return "TRUE"

    def __str__(self) -> str:
        return "⊤"


class FalseCond(Condition):
    """The unsatisfiable condition."""

    __slots__ = ()

    def _collect_cvars(self, out: set) -> None:
        pass

    def substitute(self, mapping) -> "Condition":
        return self

    def evaluate(self, assignment) -> bool:
        return False

    def atoms(self):
        return iter(())

    def negate(self) -> "Condition":
        return TRUE

    def __eq__(self, other) -> bool:
        return isinstance(other, FalseCond)

    def __hash__(self) -> int:
        return hash("FALSE")

    def __repr__(self) -> str:
        return "FALSE"

    def __str__(self) -> str:
        return "⊥"


TRUE = TrueCond()
FALSE = FalseCond()


def _restore_true() -> TrueCond:
    return TRUE


def _restore_false() -> FalseCond:
    return FALSE


# Pickle round-trips preserve the singletons, so identity checks like
# ``condition is TRUE`` keep working across process boundaries.
TrueCond.__reduce__ = lambda self: (_restore_true, ())  # type: ignore[assignment]
FalseCond.__reduce__ = lambda self: (_restore_false, ())  # type: ignore[assignment]


class Comparison(Condition):
    """An atomic comparison ``lhs op rhs`` over the c-domain.

    During rule processing a side may transiently hold a program
    :class:`~repro.ctable.terms.Variable`; stored c-tables must not
    contain variables (the valuation removes them).
    """

    __slots__ = ("lhs", "op", "rhs", "_hash", "_cvars")

    def __init__(self, lhs, op: Op, rhs):
        if op not in _OPS:
            raise ValueError(f"unknown comparison operator {op!r}")
        lhs = as_term(lhs)
        rhs = as_term(rhs)
        # Canonical orientation: constants on the right when possible, and
        # symmetric operators over two non-constants sorted by repr for
        # structural dedup.  (The repr sort must not touch var-vs-const
        # atoms, or the two construction orders would orient differently
        # and negation would not round-trip structurally.)
        if lhs.is_constant and not rhs.is_constant:
            lhs, rhs = rhs, lhs
            op = _FLIPPED_OP[op]
        elif op in ("=", "!=") and not rhs.is_constant and repr(rhs) < repr(lhs):
            lhs, rhs = rhs, lhs
        object.__setattr__(self, "lhs", lhs)
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "rhs", rhs)
        object.__setattr__(self, "_hash", None)
        object.__setattr__(self, "_cvars", None)

    def __setattr__(self, name, value):  # pragma: no cover - immutability
        raise AttributeError("Comparison is immutable")

    def _collect_cvars(self, out: set) -> None:
        for t in (self.lhs, self.rhs):
            if isinstance(t, CVariable):
                out.add(t)

    def substitute(self, mapping) -> Condition:
        lhs = (
            mapping.get(self.lhs, self.lhs)
            if isinstance(self.lhs, (CVariable, Variable))
            else self.lhs
        )
        rhs = (
            mapping.get(self.rhs, self.rhs)
            if isinstance(self.rhs, (CVariable, Variable))
            else self.rhs
        )
        if lhs is self.lhs and rhs is self.rhs:
            return self
        new = Comparison(lhs, self.op, rhs)
        return new.constant_fold()

    def constant_fold(self) -> Condition:
        """Reduce to TRUE/FALSE when both sides are constants or identical."""
        if isinstance(self.lhs, Constant) and isinstance(self.rhs, Constant):
            try:
                return TRUE if _apply_op(self.op, self.lhs.value, self.rhs.value) else FALSE
            except TypeError:
                # Incomparable payloads: = is False, != is True; order
                # comparisons stay symbolic (the solver rejects them).
                if self.op == "=":
                    return FALSE
                if self.op == "!=":
                    return TRUE
                return self
        if self.lhs == self.rhs:
            if self.op in ("=", "<=", ">="):
                return TRUE
            if self.op in ("!=", "<", ">"):
                return FALSE
        return self

    def evaluate(self, assignment) -> bool:
        lhs, rhs = self.lhs, self.rhs
        if isinstance(lhs, Constant):
            a = lhs.value
        elif isinstance(lhs, CVariable):
            a = assignment[lhs].value
        else:
            raise TypeError(f"cannot evaluate program variable {lhs!r}")
        if isinstance(rhs, Constant):
            b = rhs.value
        elif isinstance(rhs, CVariable):
            b = assignment[rhs].value
        else:
            raise TypeError(f"cannot evaluate program variable {rhs!r}")
        op = self.op
        if op == "=":
            return a == b
        if op == "!=":
            return a != b
        return _apply_op(op, a, b)

    def atoms(self):
        yield self

    def negate(self) -> Condition:
        return Comparison(self.lhs, NEGATED_OP[self.op], self.rhs)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Comparison)
            and self.op == other.op
            and self.lhs == other.lhs
            and self.rhs == other.rhs
        )

    def __hash__(self) -> int:
        # Immutable nodes cache their hash: the memo/canonicalization
        # layers hash the same (often large) trees over and over, and
        # recomputing structurally is the solver hot path's top cost.
        h = self._hash
        if h is None:
            h = hash(("cmp", self.lhs, self.op, self.rhs))
            object.__setattr__(self, "_hash", h)
        return h

    def __repr__(self) -> str:
        return f"Comparison({self.lhs!r}, {self.op!r}, {self.rhs!r})"

    def __str__(self) -> str:
        return f"{self.lhs} {self.op} {self.rhs}"


class LinearAtom(Condition):
    """A linear constraint ``sum(coeff_i * cvar_i) op constant``.

    Models failure-pattern conditions such as ``x̄ + ȳ + z̄ = 1``
    (Listing 2).  Coefficients and the bound are numbers; the c-variables
    must range over numeric domains.
    """

    __slots__ = ("coeffs", "op", "bound", "_hash", "_cvars")

    def __init__(self, coeffs, op: Op, bound):
        if op not in _OPS:
            raise ValueError(f"unknown comparison operator {op!r}")
        if isinstance(coeffs, Mapping):
            items = coeffs.items()
        else:
            items = [(v, 1) for v in coeffs]
        norm: Dict[CVariable, float] = {}
        for v, c in items:
            if not isinstance(v, CVariable):
                raise TypeError(f"LinearAtom over non-c-variable {v!r}")
            if not isinstance(c, (int, float)):
                raise TypeError(f"non-numeric coefficient {c!r}")
            norm[v] = norm.get(v, 0) + c
        norm = {v: c for v, c in norm.items() if c != 0}
        if not isinstance(bound, (int, float)):
            raise TypeError(f"non-numeric bound {bound!r}")
        frozen = tuple(sorted(norm.items(), key=lambda item: item[0].name))
        object.__setattr__(self, "coeffs", frozen)
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "bound", bound)
        object.__setattr__(self, "_hash", None)
        object.__setattr__(self, "_cvars", None)

    def __setattr__(self, name, value):  # pragma: no cover - immutability
        raise AttributeError("LinearAtom is immutable")

    def _collect_cvars(self, out: set) -> None:
        for v, _ in self.coeffs:
            out.add(v)

    def substitute(self, mapping) -> Condition:
        if not any(v in mapping for v, _ in self.coeffs):
            return self
        residual: Dict[CVariable, float] = {}
        shift = 0.0
        for v, c in self.coeffs:
            target = mapping.get(v, v)
            if isinstance(target, Constant):
                if not isinstance(target.value, (int, float)) or isinstance(target.value, bool):
                    if not isinstance(target.value, (int, float)):
                        raise TypeError(
                            f"cannot substitute non-numeric {target!r} into linear atom"
                        )
                shift += c * target.value
            elif isinstance(target, CVariable):
                residual[target] = residual.get(target, 0) + c
            else:
                raise TypeError(f"cannot substitute {target!r} into linear atom")
        new_bound = self.bound - shift
        if not residual:
            return TRUE if _apply_op(self.op, 0, new_bound) else FALSE
        return LinearAtom(residual, self.op, new_bound)

    def evaluate(self, assignment) -> bool:
        total = 0.0
        for v, c in self.coeffs:
            val = assignment[v].value
            if not isinstance(val, (int, float)):
                raise TypeError(f"non-numeric value {val!r} for {v!r} in linear atom")
            total += c * val
        return _apply_op(self.op, total, self.bound)

    def atoms(self):
        yield self

    def negate(self) -> Condition:
        return LinearAtom(dict(self.coeffs), NEGATED_OP[self.op], self.bound)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, LinearAtom)
            and self.coeffs == other.coeffs
            and self.op == other.op
            and self.bound == other.bound
        )

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash(("lin", self.coeffs, self.op, self.bound))
            object.__setattr__(self, "_hash", h)
        return h

    def __repr__(self) -> str:
        return f"LinearAtom({dict(self.coeffs)!r}, {self.op!r}, {self.bound!r})"

    def __str__(self) -> str:
        parts = []
        for v, c in self.coeffs:
            parts.append(str(v) if c == 1 else f"{c}*{v}")
        return f"{' + '.join(parts) or '0'} {self.op} {self.bound}"


class _NaryCondition(Condition):
    """Shared machinery of :class:`And` / :class:`Or`."""

    __slots__ = ("children", "_hash", "_cvars")
    _symbol = "?"

    def __init__(self, children: Sequence[Condition]):
        flat = []
        for child in children:
            if not isinstance(child, Condition):
                raise TypeError(f"non-condition child {child!r}")
            if type(child) is type(self):
                flat.extend(child.children)
            else:
                flat.append(child)
        # Structural dedup, preserving order.
        seen: set = set()
        uniq = []
        for child in flat:
            if child not in seen:
                seen.add(child)
                uniq.append(child)
        object.__setattr__(self, "children", tuple(uniq))
        object.__setattr__(self, "_hash", None)
        object.__setattr__(self, "_cvars", None)

    def __setattr__(self, name, value):  # pragma: no cover - immutability
        raise AttributeError("condition nodes are immutable")

    def _collect_cvars(self, out: set) -> None:
        for child in self.children:
            cached = getattr(child, "_cvars", None)
            if cached is not None:
                out.update(cached)
            else:
                child._collect_cvars(out)

    def atoms(self):
        for child in self.children:
            yield from child.atoms()

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and self.children == other.children

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash((type(self).__name__, self.children))
            object.__setattr__(self, "_hash", h)
        return h

    def __repr__(self) -> str:
        return f"{type(self).__name__}({list(self.children)!r})"

    def __str__(self) -> str:
        sep = f" {self._symbol} "
        return "(" + sep.join(str(c) for c in self.children) + ")"


class And(_NaryCondition):
    """Conjunction.  Prefer the :func:`conjoin` smart constructor."""

    __slots__ = ()
    _symbol = "∧"

    def substitute(self, mapping) -> Condition:
        return conjoin([c.substitute(mapping) for c in self.children])

    def evaluate(self, assignment) -> bool:
        for c in self.children:
            if not c.evaluate(assignment):
                return False
        return True

    def negate(self) -> Condition:
        return disjoin([c.negate() for c in self.children])


class Or(_NaryCondition):
    """Disjunction.  Prefer the :func:`disjoin` smart constructor."""

    __slots__ = ()
    _symbol = "∨"

    def substitute(self, mapping) -> Condition:
        return disjoin([c.substitute(mapping) for c in self.children])

    def evaluate(self, assignment) -> bool:
        for c in self.children:
            if c.evaluate(assignment):
                return True
        return False

    def negate(self) -> Condition:
        return conjoin([c.negate() for c in self.children])


class Not(Condition):
    """Negation of a compound condition (atoms negate into atoms)."""

    __slots__ = ("child", "_hash", "_cvars")

    def __init__(self, child: Condition):
        if not isinstance(child, Condition):
            raise TypeError(f"non-condition child {child!r}")
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "_hash", None)
        object.__setattr__(self, "_cvars", None)

    def __setattr__(self, name, value):  # pragma: no cover - immutability
        raise AttributeError("Not is immutable")

    def _collect_cvars(self, out: set) -> None:
        self.child._collect_cvars(out)

    def substitute(self, mapping) -> Condition:
        return self.child.substitute(mapping).negate()

    def evaluate(self, assignment) -> bool:
        return not self.child.evaluate(assignment)

    def atoms(self):
        yield from self.child.atoms()

    def negate(self) -> Condition:
        return self.child

    def __eq__(self, other) -> bool:
        return isinstance(other, Not) and self.child == other.child

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash(("not", self.child))
            object.__setattr__(self, "_hash", h)
        return h

    def __repr__(self) -> str:
        return f"Not({self.child!r})"

    def __str__(self) -> str:
        return f"¬{self.child}"


def conjoin(conditions: Iterable[Condition]) -> Condition:
    """Smart conjunction: flattens, dedups, short-circuits TRUE/FALSE."""
    parts = []
    for cond in conditions:
        if isinstance(cond, FalseCond):
            return FALSE
        if isinstance(cond, TrueCond):
            continue
        parts.append(cond)
    merged = And(parts)
    if not merged.children:
        return TRUE
    if len(merged.children) == 1:
        return merged.children[0]
    if any(isinstance(c, FalseCond) for c in merged.children):
        return FALSE
    return merged


def disjoin(conditions: Iterable[Condition]) -> Condition:
    """Smart disjunction: flattens, dedups, short-circuits TRUE/FALSE."""
    parts = []
    for cond in conditions:
        if isinstance(cond, TrueCond):
            return TRUE
        if isinstance(cond, FalseCond):
            continue
        parts.append(cond)
    merged = Or(parts)
    if not merged.children:
        return FALSE
    if len(merged.children) == 1:
        return merged.children[0]
    if any(isinstance(c, TrueCond) for c in merged.children):
        return TRUE
    return merged


# -- tiny comparison constructors -----------------------------------------


def eq(lhs, rhs) -> Condition:
    """``lhs = rhs`` with constant folding."""
    return Comparison(lhs, "=", rhs).constant_fold()


def ne(lhs, rhs) -> Condition:
    """``lhs != rhs`` with constant folding."""
    return Comparison(lhs, "!=", rhs).constant_fold()


def lt(lhs, rhs) -> Condition:
    """``lhs < rhs`` with constant folding."""
    return Comparison(lhs, "<", rhs).constant_fold()


def le(lhs, rhs) -> Condition:
    """``lhs <= rhs`` with constant folding."""
    return Comparison(lhs, "<=", rhs).constant_fold()


def gt(lhs, rhs) -> Condition:
    """``lhs > rhs`` with constant folding."""
    return Comparison(lhs, ">", rhs).constant_fold()


def ge(lhs, rhs) -> Condition:
    """``lhs >= rhs`` with constant folding."""
    return Comparison(lhs, ">=", rhs).constant_fold()
