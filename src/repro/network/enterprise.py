"""The §5 multi-team enterprise scenario, as a reusable model.

Two frontend subnets (market management *Mkt*, research & development
*R&D*), two backend servers (critical *CS*, general-purpose *GS*), a
security team owning the firewall deployment (``Fw``), a traffic
engineering team owning the load balancers (``Lb``), and a reachability
relation ``R(subnet, server, port)`` for allowed traffic.

This module provides the c-table schemas and domains, the paper's
constraints (T1, T2, C_lb, C_s as Listing 3 programs), the Listing 4
update, and builders for concrete (possibly partial) network states.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..ctable.condition import Condition, TRUE
from ..ctable.table import CTable, Database
from ..ctable.terms import Constant, CVariable, Term
from ..faurelog.ast import Program
from ..faurelog.parser import parse_program
from ..faurelog.rewrite import Deletion, Insertion, Update
from ..solver.domains import Domain, DomainMap, FiniteDomain, Unbounded

__all__ = [
    "SUBNETS",
    "SERVERS",
    "PORTS",
    "SCHEMAS",
    "column_domains",
    "EnterpriseModel",
    "constraint_T1",
    "constraint_T2",
    "policy_C_lb",
    "policy_C_s",
    "listing4_update",
]

SUBNETS: Tuple[str, ...] = ("Mkt", "R&D")
SERVERS: Tuple[str, ...] = ("CS", "GS")
PORTS: Tuple[int, ...] = (80, 344, 7000)

SCHEMAS: Dict[str, List[str]] = {
    "R": ["subnet", "server", "port"],
    "Lb": ["subnet", "server"],
    "Fw": ["subnet", "server"],
}


def column_domains() -> Dict[str, Domain]:
    """The paper's attribute domains for the enterprise relations."""
    return {
        "subnet": FiniteDomain(SUBNETS),
        "server": FiniteDomain(SERVERS),
        "port": FiniteDomain(PORTS),
    }


def constraint_T1() -> Program:
    """T1: Mkt traffic to CS must pass a firewall (q9)."""
    return parse_program("q9: panic :- R(Mkt, CS, $p), not Fw(Mkt, CS).")


def constraint_T2() -> Program:
    """T2: R&D traffic to all servers must pass a load balancer (q10)."""
    return parse_program("q10: panic :- R('R&D', $y, 7000), not Lb('R&D', $y).")


def policy_C_lb() -> Program:
    """C_lb: the TE team's load-balancing policy (q11, q13–q15)."""
    return parse_program(
        """
        q11: panic :- Vt(x, y, p).
        q13: Vt($x, CS, $p) :- R($x, CS, $p), $x != Mkt, $x != 'R&D'.
        q14: Vt($x, CS, $p) :- R($x, CS, $p), not Lb($x, CS).
        q15: Vt($x, CS, $p) :- R($x, CS, $p), $p != 7000.
        """
    )


def policy_C_s() -> Program:
    """C_s: the security team's policy (q16–q18)."""
    return parse_program(
        """
        q16: panic :- Vs(x, y, p).
        q17: Vs($x, $y, $p) :- R($x, $y, $p), not Fw($x, $y).
        q18: Vs($x, $y, $p) :- R($x, $y, $p), $p != 80, $p != 344, $p != 7000.
        """
    )


def listing4_update() -> List:
    """The §5 update: +Lb(R&D, GS), −Lb(Mkt, CS)."""
    return [Insertion("Lb", ("R&D", "GS")), Deletion("Lb", ("Mkt", "CS"))]


@dataclass
class EnterpriseModel:
    """A (possibly partial) enterprise network state Net = {R, Lb, Fw}.

    Rows may contain c-variables; :meth:`domain_map` declares their
    domains from the column they occupy.
    """

    reach: List[Tuple[Term, Term, Term, Condition]] = field(default_factory=list)
    load_balancers: List[Tuple[Term, Term, Condition]] = field(default_factory=list)
    firewalls: List[Tuple[Term, Term, Condition]] = field(default_factory=list)
    extra_domains: Dict[CVariable, Domain] = field(default_factory=dict)

    # -- builders ----------------------------------------------------------

    def allow(self, subnet, server, port, condition: Condition = TRUE) -> "EnterpriseModel":
        self.reach.append((subnet, server, port, condition))
        return self

    def balance(self, subnet, server, condition: Condition = TRUE) -> "EnterpriseModel":
        self.load_balancers.append((subnet, server, condition))
        return self

    def firewall(self, subnet, server, condition: Condition = TRUE) -> "EnterpriseModel":
        self.firewalls.append((subnet, server, condition))
        return self

    def declare(self, var, domain) -> "EnterpriseModel":
        if isinstance(var, str):
            var = CVariable(var)
        if not isinstance(domain, Domain):
            domain = FiniteDomain(domain)
        self.extra_domains[var] = domain
        return self

    # -- exports ----------------------------------------------------------------

    def database(self) -> Database:
        r = CTable("R", SCHEMAS["R"])
        for subnet, server, port, cond in self.reach:
            r.add([subnet, server, port], cond)
        lb = CTable("Lb", SCHEMAS["Lb"])
        for subnet, server, cond in self.load_balancers:
            lb.add([subnet, server], cond)
        fw = CTable("Fw", SCHEMAS["Fw"])
        for subnet, server, cond in self.firewalls:
            fw.add([subnet, server], cond)
        return Database([r, lb, fw])

    def domain_map(self) -> DomainMap:
        """Column-derived domains for every c-variable in the state."""
        domains = DomainMap(default=Unbounded("any"))
        coldoms = column_domains()
        columns = {
            "R": SCHEMAS["R"],
            "Lb": SCHEMAS["Lb"],
            "Fw": SCHEMAS["Fw"],
        }
        rows = (
            [("R", row[:3]) for row in self.reach]
            + [("Lb", row[:2]) for row in self.load_balancers]
            + [("Fw", row[:2]) for row in self.firewalls]
        )
        for table, values in rows:
            for column, value in zip(columns[table], values):
                if isinstance(value, CVariable):
                    domains.declare(value, coldoms[column])
        for var, domain in self.extra_domains.items():
            domains.declare(var, domain)
        return domains

    @staticmethod
    def paper_state() -> "EnterpriseModel":
        """A concrete state consistent with §5's running example.

        Chosen so that C_lb and C_s hold both before and after the
        Listing 4 update (the §5 setting assumes the teams' policies
        hold after the change): Mkt sends no traffic to CS, so removing
        the Mkt–CS load balancer violates nothing.
        """
        model = EnterpriseModel()
        model.allow("R&D", "CS", 7000)
        model.allow("R&D", "GS", 7000)
        model.allow("Mkt", "GS", 80)
        model.balance("Mkt", "CS")
        model.balance("R&D", "CS")
        model.balance("R&D", "GS")
        model.firewall("Mkt", "CS")
        model.firewall("R&D", "CS")
        model.firewall("R&D", "GS")
        model.firewall("Mkt", "GS")
        return model
