"""Route selection under unknown preferences.

BGP's decision process picks, per prefix, the candidate route with the
highest local preference.  When some preferences are invisible (set by
another team, or learned from an external neighbor), the *selected*
route becomes uncertain — and the c-table answer is the exact condition
on the unknown preferences under which each candidate wins.

:func:`selection_conditions` computes, per candidate, the win condition
``pref_i > pref_j`` for all j (ties broken by announcement order, as
routers do with deterministic tie-breakers); :func:`selection_table`
compiles the result into a c-table usable as a FIB input for the
reachability machinery.  This exercises the solver's ordering fragment —
conditions here are conjunctions of ``>``/``>=`` atoms over numeric
c-variables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..ctable.condition import Comparison, Condition, TRUE, conjoin
from ..ctable.table import CTable
from ..ctable.terms import Constant, CVariable, Term, as_term
from ..solver.interface import ConditionSolver

__all__ = ["CandidateRoute", "selection_conditions", "selection_table", "classify_selection"]


@dataclass(frozen=True)
class CandidateRoute:
    """One candidate: next hop plus a (possibly unknown) preference.

    ``preference`` is a number or a c-variable; higher wins.
    """

    prefix: str
    next_hop: str
    preference: Union[int, float, CVariable]

    @property
    def preference_term(self) -> Term:
        return as_term(self.preference)


def selection_conditions(
    candidates: Sequence[CandidateRoute],
) -> List[Tuple[CandidateRoute, Condition]]:
    """Per candidate, the condition under which it is selected.

    Candidate *i* wins iff its preference strictly exceeds every earlier
    candidate's and is at least every later candidate's (the
    deterministic earlier-wins tie-break).  Distinct prefixes may be
    mixed; comparisons happen within a prefix.
    """
    by_prefix: Dict[str, List[CandidateRoute]] = {}
    for candidate in candidates:
        by_prefix.setdefault(candidate.prefix, []).append(candidate)

    results: List[Tuple[CandidateRoute, Condition]] = []
    for prefix, group in by_prefix.items():
        for i, candidate in enumerate(group):
            parts: List[Condition] = []
            for j, other in enumerate(group):
                if i == j:
                    continue
                op = ">=" if i < j else ">"
                parts.append(
                    Comparison(
                        candidate.preference_term, op, other.preference_term
                    ).constant_fold()
                )
            results.append((candidate, conjoin(parts)))
    return results


def selection_table(
    candidates: Sequence[CandidateRoute],
    name: str = "Fib",
    solver: Optional[ConditionSolver] = None,
) -> CTable:
    """The selected-route c-table ``Fib(prefix, next_hop)``.

    With a solver, candidates that can never win are pruned (the
    paper's step 3).
    """
    table = CTable(name, ["prefix", "next_hop"])
    for candidate, condition in selection_conditions(candidates):
        if solver is not None and not solver.is_satisfiable(condition):
            continue
        table.add([candidate.prefix, candidate.next_hop], condition)
    return table


def classify_selection(
    candidates: Sequence[CandidateRoute],
    solver: ConditionSolver,
) -> Dict[str, Dict[str, str]]:
    """Per prefix and next hop: 'always' / 'possible' / 'never' selected."""
    out: Dict[str, Dict[str, str]] = {}
    for candidate, condition in selection_conditions(candidates):
        per = out.setdefault(candidate.prefix, {})
        if solver.is_valid(condition):
            verdict = "always"
        elif solver.is_satisfiable(condition):
            verdict = "possible"
        else:
            verdict = "never"
        per[candidate.next_hop] = verdict
    return out
