"""Fast-reroute configurations and their c-table encoding (§4).

A :class:`FrrConfig` captures the paper's Figure 1 pattern: *protected*
primary links, each with a ranked list of backup next-hops used as a
detour when the primary fails.  The whole space of forwarding behaviours
under arbitrary failures compiles **once and for all** into a single
c-table ``F(node, node)`` whose conditions mention one {0,1} c-variable
per protected link — 1 normal, 0 failed (Table 3).

Compilation rule per node with a protected primary (ranked backups
``b1 < b2 < ...``):

* primary next-hop under ``link_var = 1``;
* backup ``bk`` under ``link_var = 0`` and, if backup links are
  themselves protected, the failure of every higher-ranked backup.

Unprotected links forward unconditionally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from ..ctable.condition import Condition, TRUE, conjoin, eq
from ..ctable.table import CTable, Database
from ..ctable.terms import CVariable
from ..solver.domains import BOOL_DOMAIN, DomainMap
from .topology import Link, Node, Topology

__all__ = ["ProtectedLink", "FrrConfig", "paper_figure1"]


@dataclass(frozen=True)
class ProtectedLink:
    """A primary link with its state variable and ranked backups.

    ``backups`` are next-hop nodes tried in order when the link fails.
    """

    source: Node
    target: Node
    state_var: CVariable
    backups: Tuple[Node, ...] = ()


class FrrConfig:
    """A fast-reroute configuration over a topology."""

    def __init__(self, topology: Optional[Topology] = None):
        self.topology = topology if topology is not None else Topology()
        self._protected: List[ProtectedLink] = []
        self._plain_links: List[Link] = []
        self._vars: Dict[str, CVariable] = {}

    # -- construction -----------------------------------------------------

    def protect(
        self,
        source: Node,
        target: Node,
        backups: Sequence[Node] = (),
        state_var: Optional[str] = None,
    ) -> ProtectedLink:
        """Declare a protected primary link with ranked backup next-hops."""
        name = state_var or f"l_{source}_{target}"
        if name in self._vars:
            raise ValueError(f"state variable {name!r} already used")
        var = CVariable(name)
        self._vars[name] = var
        link = ProtectedLink(source, target, var, tuple(backups))
        self._protected.append(link)
        self.topology.add_link(source, target)
        for backup in backups:
            self.topology.add_link(source, backup)
        return link

    def add_link(self, source: Node, target: Node) -> None:
        """An unconditional (unprotected) link."""
        self._plain_links.append((source, target))
        self.topology.add_link(source, target)

    @property
    def protected_links(self) -> Tuple[ProtectedLink, ...]:
        return tuple(self._protected)

    @property
    def state_variables(self) -> Tuple[CVariable, ...]:
        return tuple(p.state_var for p in self._protected)

    # -- compilation ---------------------------------------------------------

    def domain_map(self, base: Optional[DomainMap] = None) -> DomainMap:
        """Domains: every link-state variable ranges over {0, 1}."""
        domains = base.copy() if base is not None else DomainMap()
        for var in self.state_variables:
            domains.declare(var, BOOL_DOMAIN)
        return domains

    def forwarding_table(self, name: str = "F") -> CTable:
        """Compile to the single c-table of all possible behaviours.

        The protection of the *backup* links themselves is respected:
        backup ``b_k`` of link ``l`` activates under ``l = 0`` and the
        failure of every higher-ranked backup that is itself a protected
        link from the same source.
        """
        table = CTable(name, ["n1", "n2"])
        protected_by_pair: Dict[Link, ProtectedLink] = {
            (p.source, p.target): p for p in self._protected
        }
        for p in self._protected:
            table.add([p.source, p.target], eq(p.state_var, 1))
            prior_failures: List[Condition] = [eq(p.state_var, 0)]
            for backup in p.backups:
                table.add([p.source, backup], conjoin(prior_failures))
                # If the backup link is protected too, the *next* backup
                # engages only after this one also fails.
                backup_link = protected_by_pair.get((p.source, backup))
                if backup_link is not None:
                    prior_failures = prior_failures + [eq(backup_link.state_var, 0)]
        for src, dst in self._plain_links:
            table.add([src, dst], TRUE)
        return table

    def database(self, name: str = "F") -> Database:
        return Database([self.forwarding_table(name)])

    def world_of(self, failed_links: Iterable[Link]) -> Dict[CVariable, int]:
        """The assignment for a concrete failure set (1 = up, 0 = down)."""
        failed = set(failed_links)
        return {
            p.state_var: 0 if (p.source, p.target) in failed else 1
            for p in self._protected
        }


def paper_figure1() -> FrrConfig:
    """The Figure 1 excerpt: 5 nodes, protected links x̄, ȳ, z̄.

    Primary chain 1→2→3→5 with per-hop detours through 3 and 4; matches
    the F fragment of Table 3 (F(1,2)[x̄=1], F(1,3)[x̄=0], F(2,3)[ȳ=1],
    F(2,4)[ȳ=0], ...).
    """
    config = FrrConfig()
    config.protect(1, 2, backups=[3], state_var="x")
    config.protect(2, 3, backups=[4], state_var="y")
    config.protect(3, 5, backups=[4], state_var="z")
    config.add_link(4, 5)
    return config
