"""Failure-tolerance analysis on top of conditional reachability.

Once reachability is a *condition* over link states (§4), classic
resilience questions become solver queries instead of enumeration:

* **tolerance** of a pair — the largest k such that the pair stays
  connected under *every* combination of at most k failures:
  ``tolerance >= k  ⟺  (Σ up-states >= n-k) ⊨ reach-condition``;
* **critical link sets** — minimal failure sets that disconnect a pair,
  read off the reachability condition's complement;
* a network-wide **tolerance profile** (how many pairs survive k
  failures for each k), the summary a capacity planner actually reads.

All of it reuses the single R table one fauré evaluation produced — no
per-k re-analysis.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..ctable.condition import Condition, FALSE, disjoin
from ..ctable.terms import Constant, CVariable
from ..solver.interface import ConditionSolver
from ..workloads.failures import at_most_k_failures
from .frr import FrrConfig
from .reachability import ReachabilityAnalyzer

__all__ = ["ResilienceReport", "analyze_resilience", "pair_tolerance", "critical_sets"]


def _pair_condition(analyzer: ReachabilityAnalyzer, src, dst) -> Condition:
    conditions = [
        t.condition
        for t in analyzer.reach_table
        if t.values == (Constant(src), Constant(dst))
    ]
    return disjoin(conditions) if conditions else FALSE


def pair_tolerance(
    analyzer: ReachabilityAnalyzer,
    variables: Sequence[CVariable],
    src,
    dst,
) -> int:
    """Largest k with src→dst reachable under every ≤k-failure world.

    -1 when the pair is unreachable even with zero failures.
    """
    condition = _pair_condition(analyzer, src, dst)
    solver = analyzer.solver
    tolerance = -1
    for k in range(len(variables) + 1):
        if solver.implies(at_most_k_failures(list(variables), k), condition):
            tolerance = k
        else:
            break
    return tolerance


def critical_sets(
    analyzer: ReachabilityAnalyzer,
    config: FrrConfig,
    src,
    dst,
    max_size: Optional[int] = None,
) -> List[FrozenSet[Tuple]]:
    """Minimal protected-link failure sets that disconnect src→dst.

    A failure set S is disconnecting when the reachability condition is
    false in the world failing exactly S; minimality prunes supersets.
    """
    condition = _pair_condition(analyzer, src, dst)
    links = [(p.source, p.target) for p in config.protected_links]
    var_of = {(p.source, p.target): p.state_var for p in config.protected_links}
    limit = max_size if max_size is not None else len(links)
    minimal: List[FrozenSet[Tuple]] = []
    for size in range(0, limit + 1):
        for subset in combinations(links, size):
            failed = frozenset(subset)
            if any(previous <= failed for previous in minimal):
                continue
            assignment = {
                var_of[link]: Constant(0 if link in failed else 1)
                for link in links
            }
            if not condition.evaluate(assignment):
                minimal.append(failed)
    return minimal


class ResilienceReport:
    """Tolerance per pair + the k-survivors profile."""

    def __init__(self, tolerances: Dict[Tuple, int], link_count: int):
        self.tolerances = tolerances
        self.link_count = link_count

    def survivors(self, k: int) -> int:
        """Number of pairs still connected under every ≤k-failure world."""
        return sum(1 for t in self.tolerances.values() if t >= k)

    def profile(self) -> List[Tuple[int, int]]:
        """(k, #pairs tolerant to k) for k = 0..#links."""
        return [(k, self.survivors(k)) for k in range(self.link_count + 1)]

    def weakest_pairs(self) -> List[Tuple]:
        """Pairs with the lowest tolerance."""
        if not self.tolerances:
            return []
        worst = min(self.tolerances.values())
        return [pair for pair, t in self.tolerances.items() if t == worst]

    def __str__(self) -> str:
        lines = ["k-failure survivors:"]
        for k, n in self.profile():
            lines.append(f"  <= {k} failures: {n} pairs")
        return "\n".join(lines)


def analyze_resilience(
    config: FrrConfig,
    solver: Optional[ConditionSolver] = None,
    pairs: Optional[Sequence[Tuple]] = None,
) -> ResilienceReport:
    """Tolerance of every (given) pair on a fast-reroute configuration."""
    solver = solver if solver is not None else ConditionSolver(config.domain_map())
    analyzer = ReachabilityAnalyzer(config.database(), solver)
    analyzer.compute()
    variables = list(config.state_variables)
    if pairs is None:
        nodes = sorted(config.topology.nodes, key=str)
        pairs = [(a, b) for a in nodes for b in nodes if a != b]
    tolerances = {
        (src, dst): pair_tolerance(analyzer, variables, src, dst)
        for src, dst in pairs
    }
    return ResilienceReport(tolerances, len(variables))
