"""Inter-domain analysis under limited visibility (§1's second motivation).

"In the global Internet, the inability to obtain the BGP configuration
inputs from external domains leaves most attempts to verify the global
routing behavior futile."  Fauré's answer: model what you *cannot see*
as c-variables and still compute everything the visible information
determines.

Here, an operator analyses where a prefix announcement can propagate:

* links whose export policy is **known** (your own AS, cooperating
  peers) are unconditional edges or known-absent;
* every other link gets a {0,1} c-variable — "does that AS export the
  route on this adjacency?";
* propagation is plain fauré-log reachability over the resulting
  c-table, so each AS ends up with the exact condition — over the
  *unknown foreign policies* — under which it learns the route.

Three query levels fall out for free:

* :meth:`AnnouncementAnalysis.certainly_reaches` — true in *every*
  policy world (decided from visible info alone);
* :meth:`AnnouncementAnalysis.possibly_reaches` — true in *some* world;
* :meth:`AnnouncementAnalysis.reachability_condition` — the exact
  condition, for downstream reasoning (e.g. "AS 7 sees the prefix iff
  AS 3 exports to it or AS 5 exports to AS 6").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from ..ctable.condition import Condition, FALSE, TRUE, disjoin, eq
from ..ctable.table import CTable, Database
from ..ctable.terms import Constant, CVariable
from ..faurelog.ast import Atom, Literal, Program, Rule
from ..faurelog.evaluation import FaureEvaluator
from ..ctable.terms import Variable
from ..solver.domains import BOOL_DOMAIN, DomainMap
from ..solver.interface import ConditionSolver

__all__ = ["ExportPolicy", "InterdomainNetwork", "AnnouncementAnalysis"]

As = Hashable


class ExportPolicy(enum.Enum):
    """What the operator knows about one adjacency's export behaviour."""

    EXPORTS = "exports"          # known to propagate the route
    BLOCKS = "blocks"            # known to filter it
    UNKNOWN = "unknown"          # invisible foreign policy


class InterdomainNetwork:
    """An AS-level adjacency map with per-link visibility."""

    def __init__(self) -> None:
        self._links: Dict[Tuple[As, As], ExportPolicy] = {}
        self._vars: Dict[Tuple[As, As], CVariable] = {}

    def add_link(
        self, exporter: As, importer: As, policy: ExportPolicy = ExportPolicy.UNKNOWN
    ) -> None:
        """Declare that ``exporter`` may announce routes to ``importer``."""
        if exporter == importer:
            raise ValueError(f"self adjacency on {exporter!r}")
        self._links[(exporter, importer)] = policy

    def ases(self) -> List[As]:
        out = []
        for a, b in self._links:
            for x in (a, b):
                if x not in out:
                    out.append(x)
        return out

    def policy_variable(self, exporter: As, importer: As) -> CVariable:
        """The c-variable standing for an unknown adjacency policy."""
        key = (exporter, importer)
        if self._links.get(key) is not ExportPolicy.UNKNOWN:
            raise KeyError(f"link {key} has no unknown policy")
        var = self._vars.get(key)
        if var is None:
            var = CVariable(f"e_{exporter}_{importer}")
            self._vars[key] = var
        return var

    def unknown_links(self) -> List[Tuple[As, As]]:
        return [k for k, p in self._links.items() if p is ExportPolicy.UNKNOWN]

    # -- compilation -------------------------------------------------------

    def edge_table(self, name: str = "E") -> CTable:
        """One c-table of all adjacencies: unknown policies conditioned."""
        table = CTable(name, ["exporter", "importer"])
        for (exporter, importer), policy in self._links.items():
            if policy is ExportPolicy.BLOCKS:
                continue
            condition = TRUE
            if policy is ExportPolicy.UNKNOWN:
                condition = eq(self.policy_variable(exporter, importer), 1)
            table.add([exporter, importer], condition)
        return table

    def domain_map(self, base: Optional[DomainMap] = None) -> DomainMap:
        domains = base.copy() if base is not None else DomainMap()
        for exporter, importer in self.unknown_links():
            domains.declare(self.policy_variable(exporter, importer), BOOL_DOMAIN)
        return domains

    def analyze(self, origin: As) -> "AnnouncementAnalysis":
        """Propagate an announcement from ``origin`` through all worlds."""
        return AnnouncementAnalysis(self, origin)


def _propagation_program() -> Program:
    a, b = Variable("a"), Variable("b")
    return Program(
        [
            Rule(Atom("Ann", [b]), [Literal(Atom("Orig", [b]))], label="seed"),
            Rule(
                Atom("Ann", [b]),
                [Literal(Atom("Ann", [a])), Literal(Atom("E", [a, b]))],
                label="step",
            ),
        ]
    )


class AnnouncementAnalysis:
    """Where can the announcement go, given what we can(not) see?"""

    def __init__(self, network: InterdomainNetwork, origin: As):
        self.network = network
        self.origin = origin
        self.domains = network.domain_map()
        self.solver = ConditionSolver(self.domains)
        db = Database([network.edge_table()])
        orig = db.create_table("Orig", ["asn"])
        orig.add([origin])
        evaluator = FaureEvaluator(db, solver=self.solver)
        result = evaluator.evaluate(_propagation_program())
        self.stats = evaluator.stats
        self._conditions: Dict[As, List[Condition]] = {}
        for tup in result.table("Ann"):
            self._conditions.setdefault(tup.values[0].value, []).append(tup.condition)

    def reachability_condition(self, asn: As) -> Condition:
        """The exact condition under which ``asn`` learns the route."""
        conditions = self._conditions.get(asn)
        if not conditions:
            return FALSE
        return disjoin(conditions)

    def certainly_reaches(self, asn: As) -> bool:
        """True when every assignment of unknown policies delivers it."""
        return self.solver.is_valid(self.reachability_condition(asn))

    def possibly_reaches(self, asn: As) -> bool:
        """True when some assignment of unknown policies delivers it."""
        return self.solver.is_satisfiable(self.reachability_condition(asn))

    def classification(self) -> Dict[As, str]:
        """Every AS → 'certain' / 'possible' / 'never'."""
        out: Dict[As, str] = {}
        for asn in self.network.ases():
            if self.certainly_reaches(asn):
                out[asn] = "certain"
            elif self.possibly_reaches(asn):
                out[asn] = "possible"
            else:
                out[asn] = "never"
        return out

    def required_policies(self, asn: As) -> Optional[Dict[CVariable, int]]:
        """One assignment of unknown policies that delivers the route.

        ``None`` when no assignment does.  Useful as an actionable
        answer: "ask AS x to export on (x, y)".
        """
        condition = self.reachability_condition(asn)
        model = self.solver.model(condition)
        if model is None:
            return None
        return {var: const.value for var, const in model.items()}
