"""Network topology: nodes and directed links.

A light structural layer under the fast-reroute and reachability
modules.  Nodes are "abstract addressable routing/forwarding entities"
(paper, §4) — any hashable label works.  Links are directed (forwarding
is directional); undirected physical links are added as two arcs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

import networkx as nx

__all__ = ["Link", "Topology"]

Node = Hashable
Link = Tuple[Node, Node]


class Topology:
    """A directed graph of forwarding entities."""

    def __init__(self, links: Iterable[Link] = (), nodes: Iterable[Node] = ()):
        self._nodes: Set[Node] = set(nodes)
        self._links: List[Link] = []
        self._link_set: Set[Link] = set()
        for link in links:
            self.add_link(*link)

    def add_node(self, node: Node) -> None:
        self._nodes.add(node)

    def add_link(self, src: Node, dst: Node) -> None:
        """Add a directed link (idempotent)."""
        if src == dst:
            raise ValueError(f"self-loop on {src!r}")
        self._nodes.add(src)
        self._nodes.add(dst)
        if (src, dst) not in self._link_set:
            self._link_set.add((src, dst))
            self._links.append((src, dst))

    def add_undirected(self, a: Node, b: Node) -> None:
        self.add_link(a, b)
        self.add_link(b, a)

    @property
    def nodes(self) -> FrozenSet[Node]:
        return frozenset(self._nodes)

    @property
    def links(self) -> Tuple[Link, ...]:
        return tuple(self._links)

    def has_link(self, src: Node, dst: Node) -> bool:
        return (src, dst) in self._link_set

    def successors(self, node: Node) -> List[Node]:
        return [dst for src, dst in self._links if src == node]

    def to_networkx(self) -> "nx.DiGraph":
        graph = nx.DiGraph()
        graph.add_nodes_from(self._nodes)
        graph.add_edges_from(self._links)
        return graph

    def reachable_pairs(self) -> Set[Tuple[Node, Node]]:
        """All (src, dst) pairs with src ≠ dst and a directed path."""
        graph = self.to_networkx()
        out: Set[Tuple[Node, Node]] = set()
        for src in self._nodes:
            for dst in nx.descendants(graph, src):
                out.add((src, dst))
        return out

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: Node) -> bool:
        return node in self._nodes

    def __repr__(self) -> str:
        return f"Topology({len(self._nodes)} nodes, {len(self._links)} links)"
