"""Per-prefix forwarding state from ranked AS paths (§6's workload).

The paper derives forwarding entries from a BGP RIB: per prefix, five AS
paths — one primary, four backups with fixed preference order, "a backup
will be used only when the primary and all the backups with higher
preferences have failed".  This module compiles such ranked routes into
the per-flow forwarding c-table ``F(flow, n1, n2)`` that Listing 2's
q4/q5 consume:

* path *k* of a prefix is active under the condition
  ``u0 = 0 ∧ … ∧ u(k-1) = 0 ∧ uk = 1`` over the prefix's path-state
  c-variables (1 = usable, 0 = failed);
* every consecutive AS pair of an active path contributes one F row
  carrying that path's activation condition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..ctable.condition import Condition, conjoin, eq
from ..ctable.table import CTable, Database
from ..ctable.terms import CVariable
from ..solver.domains import BOOL_DOMAIN, DomainMap

__all__ = ["PrefixRoutes", "CompiledForwarding", "compile_forwarding"]


@dataclass(frozen=True)
class PrefixRoutes:
    """Ranked routes of one prefix: ``paths[0]`` primary, rest backups."""

    prefix: str
    paths: Tuple[Tuple[str, ...], ...]

    def __post_init__(self):
        if not self.paths:
            raise ValueError(f"prefix {self.prefix} has no paths")
        for path in self.paths:
            if len(path) < 2:
                raise ValueError(f"path {path} of {self.prefix} is degenerate")


@dataclass
class CompiledForwarding:
    """The F c-table plus the bookkeeping the queries need."""

    table: CTable
    domains: DomainMap
    path_vars: Dict[str, Tuple[CVariable, ...]]  # prefix -> per-path state vars

    def database(self) -> Database:
        return Database([self.table])

    def variables_of(self, prefix: str) -> Tuple[CVariable, ...]:
        return self.path_vars[prefix]


def compile_forwarding(
    routes: Iterable[PrefixRoutes],
    name: str = "F",
    base_domains: Optional[DomainMap] = None,
) -> CompiledForwarding:
    """Compile ranked per-prefix routes into a per-flow c-table.

    Path-state c-variables are named ``u<i>_<k>`` (prefix index, path
    rank) and declared over {0, 1}.
    """
    table = CTable(name, ["flow", "n1", "n2"])
    domains = base_domains.copy() if base_domains is not None else DomainMap()
    path_vars: Dict[str, Tuple[CVariable, ...]] = {}
    for index, route in enumerate(routes):
        variables = tuple(
            CVariable(f"u{index}_{k}") for k in range(len(route.paths))
        )
        path_vars[route.prefix] = variables
        for var in variables:
            domains.declare(var, BOOL_DOMAIN)
        for k, path in enumerate(route.paths):
            activation: List[Condition] = [eq(variables[j], 0) for j in range(k)]
            activation.append(eq(variables[k], 1))
            condition = conjoin(activation)
            for a, b in zip(path, path[1:]):
                table.add([route.prefix, a, b], condition)
    return CompiledForwarding(table=table, domains=domains, path_vars=path_vars)
