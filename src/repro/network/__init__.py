"""Network substrate: topologies, fast-reroute, forwarding, scenarios.

Everything the paper's two running examples need — the §4 fast-reroute
configuration compiled to a forwarding c-table, reachability analysis
under failure patterns, per-prefix RIB-derived forwarding (§6), and the
§5 multi-team enterprise model.
"""

from .acl import ANY, Acl, AclRule
from .enterprise import (
    EnterpriseModel,
    PORTS,
    SCHEMAS,
    SERVERS,
    SUBNETS,
    column_domains,
    constraint_T1,
    constraint_T2,
    listing4_update,
    policy_C_lb,
    policy_C_s,
)
from .forwarding import CompiledForwarding, PrefixRoutes, compile_forwarding
from .frr import FrrConfig, ProtectedLink, paper_figure1
from .interdomain import AnnouncementAnalysis, ExportPolicy, InterdomainNetwork
from .reachability import ReachabilityAnalyzer, reachability_program
from .resilience import (
    ResilienceReport,
    analyze_resilience,
    critical_sets,
    pair_tolerance,
)
from .routeselect import (
    CandidateRoute,
    classify_selection,
    selection_conditions,
    selection_table,
)
from .topology import Link, Topology

__all__ = [
    "ANY",
    "Acl",
    "AclRule",
    "EnterpriseModel",
    "PORTS",
    "SCHEMAS",
    "SERVERS",
    "SUBNETS",
    "column_domains",
    "constraint_T1",
    "constraint_T2",
    "listing4_update",
    "policy_C_lb",
    "policy_C_s",
    "CompiledForwarding",
    "PrefixRoutes",
    "compile_forwarding",
    "FrrConfig",
    "ProtectedLink",
    "paper_figure1",
    "AnnouncementAnalysis",
    "ExportPolicy",
    "InterdomainNetwork",
    "ReachabilityAnalyzer",
    "reachability_program",
    "ResilienceReport",
    "analyze_resilience",
    "critical_sets",
    "pair_tolerance",
    "CandidateRoute",
    "classify_selection",
    "selection_conditions",
    "selection_table",
    "Link",
    "Topology",
]
