"""Reachability analysis under failures — Listing 2 as a library.

Wraps the fauré-log programs of §4 behind a typed API:

* :func:`reachability_program` — the recursive q4/q5 pair (2-ary
  ``F(n1, n2)`` or 3-ary ``F(f, n1, n2)`` per-flow form);
* :class:`ReachabilityAnalyzer` — computes the R table once, then
  answers failure-pattern queries (q6–q8 style) by nesting fauré-log
  queries over R, exactly as the paper layers T1/T2/T3.

Failure patterns are arbitrary conditions over the link-state
c-variables, so "reachability under 2-link failure", "…where link (2,3)
must be down", and "…with at least one failure" (the paper's three
examples) are one-liners.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from ..ctable.condition import Condition, LinearAtom, TRUE, conjoin, eq
from ..ctable.table import CTable, CTuple, Database
from ..ctable.terms import Constant, CVariable
from ..engine.stats import EvalStats
from ..faurelog.ast import Atom, Literal, Program, Rule
from ..faurelog.evaluation import FaureEvaluator
from ..ctable.terms import Variable
from ..solver.interface import ConditionSolver

__all__ = ["reachability_program", "ReachabilityAnalyzer"]


def reachability_program(
    forwarding: str = "F",
    result: str = "R",
    per_flow: bool = False,
) -> Program:
    """The q4/q5 recursive program.

    2-ary: ``R(n1,n2) :- F(n1,n2).  R(n1,n2) :- F(n1,n3), R(n3,n2).``
    Per-flow (3-ary) adds the flow attribute threaded through, as in
    Listing 2.
    """
    if per_flow:
        f, n1, n2, n3 = (Variable(n) for n in ("f", "n1", "n2", "n3"))
        return Program(
            [
                Rule(
                    Atom(result, [f, n1, n2]),
                    [Literal(Atom(forwarding, [f, n1, n2]))],
                    label="q4",
                ),
                Rule(
                    Atom(result, [f, n1, n2]),
                    [
                        Literal(Atom(forwarding, [f, n1, n3])),
                        Literal(Atom(result, [f, n3, n2])),
                    ],
                    label="q5",
                ),
            ]
        )
    n1, n2, n3 = (Variable(n) for n in ("n1", "n2", "n3"))
    return Program(
        [
            Rule(Atom(result, [n1, n2]), [Literal(Atom(forwarding, [n1, n2]))], label="q4"),
            Rule(
                Atom(result, [n1, n2]),
                [
                    Literal(Atom(forwarding, [n1, n3])),
                    Literal(Atom(result, [n3, n2])),
                ],
                label="q5",
            ),
        ]
    )


class ReachabilityAnalyzer:
    """All-pairs reachability over a forwarding c-table, plus patterns.

    Parameters
    ----------
    database:
        Holds the forwarding c-table (named ``forwarding``).
    solver:
        Decides/prunes conditions; its domain map must cover the
        link-state variables.
    per_flow:
        Use the 3-ary per-flow schema of Listing 2.
    """

    def __init__(
        self,
        database: Database,
        solver: ConditionSolver,
        forwarding: str = "F",
        per_flow: bool = False,
    ):
        self.database = database
        self.solver = solver
        self.forwarding = forwarding
        self.per_flow = per_flow
        self.stats = EvalStats()
        self._reach_db: Optional[Database] = None
        self._reach_storage = None

    # -- the recursive core (q4-q5) -------------------------------------------

    def compute(self) -> CTable:
        """Run q4/q5 to fixpoint; caches and returns the R table."""
        from ..engine.storage import Storage

        program = reachability_program(self.forwarding, "R", self.per_flow)
        evaluator = FaureEvaluator(self.database, solver=self.solver)
        self._reach_db = evaluator.evaluate(program)
        self._reach_storage = Storage(self._reach_db)
        self.stats.add(evaluator.stats)
        return self._reach_db.table("R")

    @property
    def reach_table(self) -> CTable:
        if self._reach_db is None:
            self.compute()
        return self._reach_db.table("R")

    # -- failure-pattern queries (q6-q8 style) -------------------------------------

    def under_pattern(
        self,
        pattern: Condition,
        name: str = "T",
        source: Optional[Hashable] = None,
        dest: Optional[Hashable] = None,
        flow: Optional[Hashable] = None,
    ) -> Tuple[CTable, EvalStats]:
        """Reachability restricted by a failure-pattern condition.

        ``pattern`` is a condition over link-state c-variables (e.g.
        ``x̄ + ȳ + z̄ = 1``); ``source``/``dest``/``flow`` optionally pin
        endpoints as in q7.  Returns the derived c-table and the
        per-query stats (sql vs solver split).
        """
        if self._reach_db is None:
            self.compute()
        args: List = []
        if self.per_flow:
            args.append(Constant(flow) if flow is not None else Variable("f"))
        args.append(Constant(source) if source is not None else Variable("n1"))
        args.append(Constant(dest) if dest is not None else Variable("n2"))
        body: List = [Literal(Atom("R", args))]
        if pattern is not TRUE:
            body.append(pattern)
        rule = Rule(Atom(name, args), body)
        evaluator = FaureEvaluator(
            self._reach_db, solver=self.solver, storage=self._reach_storage
        )
        result = evaluator.evaluate(Program([rule]))
        self.stats.add(evaluator.stats)
        return result.table(name), evaluator.stats

    def exactly_k_up(
        self, variables: Sequence[CVariable], k: int, name: str = "T"
    ) -> Tuple[CTable, EvalStats]:
        """Pattern: exactly ``k`` of the given links are up (q6 shape)."""
        return self.under_pattern(LinearAtom(list(variables), "=", k), name=name)

    def at_least_one_failure(
        self, variables: Sequence[CVariable], name: str = "T"
    ) -> Tuple[CTable, EvalStats]:
        """Pattern: at least one of the given links failed (q8 shape)."""
        bound = len(variables) - 1
        return self.under_pattern(LinearAtom(list(variables), "<=", bound), name=name)

    # -- certain / possible classification ---------------------------------

    def classify(self) -> "AnswerSet":
        """Split all-pairs reachability into certain and possible facts.

        Certain pairs are reachable under *every* failure combination
        (the safe set); possible pairs come with the exact condition.
        """
        from ..faurelog.answers import classify_answers

        return classify_answers(self.reach_table, self.solver)

    def certain_pairs(self) -> set:
        """(src, dst) pairs reachable in every world."""
        answers = self.classify()
        offset = 1 if self.per_flow else 0
        return {
            (row[offset].value, row[offset + 1].value) for row in answers.certain
        }

    # -- concrete-world probes ----------------------------------------------------

    def holds_in_world(
        self,
        src: Hashable,
        dst: Hashable,
        assignment: Dict[CVariable, int],
        flow: Optional[Hashable] = None,
    ) -> bool:
        """Does src reach dst in the world given by the assignment?"""
        table = self.reach_table
        consts = {v: Constant(int(b)) for v, b in assignment.items()}
        want = []
        if self.per_flow:
            want.append(Constant(flow))
        want.extend([Constant(src), Constant(dst)])
        for tup in table:
            if list(tup.values) == want and tup.condition.evaluate(consts):
                return True
        return False
