"""Reachability analysis under failures — Listing 2 as a library.

Wraps the fauré-log programs of §4 behind a typed API:

* :func:`reachability_program` — the recursive q4/q5 pair (2-ary
  ``F(n1, n2)`` or 3-ary ``F(f, n1, n2)`` per-flow form);
* :class:`ReachabilityAnalyzer` — computes the R table once, then
  answers failure-pattern queries (q6–q8 style) by nesting fauré-log
  queries over R, exactly as the paper layers T1/T2/T3.

Failure patterns are arbitrary conditions over the link-state
c-variables, so "reachability under 2-link failure", "…where link (2,3)
must be down", and "…with at least one failure" (the paper's three
examples) are one-liners.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from ..ctable.condition import Condition, LinearAtom, TRUE, conjoin, eq
from ..ctable.table import CTable, CTuple, Database
from ..ctable.terms import Constant, CVariable
from ..engine.pipeline import _memo_snapshot, _record_memo_delta
from ..engine.stats import EvalStats
from ..faurelog.ast import Atom, Literal, Program, Rule
from ..faurelog.evaluation import FaureEvaluator
from ..ctable.terms import Variable
from ..solver.interface import ConditionSolver

__all__ = [
    "reachability_program",
    "ReachabilityAnalyzer",
    "PatternQuery",
    "run_pattern_query",
]


@dataclass(frozen=True)
class PatternQuery:
    """One failure-pattern query (q6–q8 shape), picklable for fan-out."""

    pattern: Condition
    name: str = "T"
    source: Optional[Hashable] = None
    dest: Optional[Hashable] = None
    flow: Optional[Hashable] = None


def run_pattern_query(
    reach_db: Database,
    solver: ConditionSolver,
    per_flow: bool,
    query: PatternQuery,
    storage=None,
    precheck=None,
) -> Tuple[CTable, EvalStats]:
    """Evaluate one pattern query over a computed reachability database.

    Module-level (rather than a method) so worker processes can run it
    against initializer-shipped state; :meth:`ReachabilityAnalyzer.
    under_pattern` is a thin wrapper over it.  ``precheck`` is the
    static optimizer's solver-free condition classifier (``--optimize``);
    the evaluator stands it down itself under fault injection.
    """
    args: List = []
    if per_flow:
        args.append(Constant(query.flow) if query.flow is not None else Variable("f"))
    args.append(Constant(query.source) if query.source is not None else Variable("n1"))
    args.append(Constant(query.dest) if query.dest is not None else Variable("n2"))
    body: List = [Literal(Atom("R", args))]
    if query.pattern is not TRUE:
        body.append(query.pattern)
    rule = Rule(Atom(query.name, args), body)
    evaluator = FaureEvaluator(
        reach_db, solver=solver, storage=storage, precheck=precheck
    )
    before = _memo_snapshot(solver) if solver is not None else None
    result = evaluator.evaluate(Program([rule]))
    if before is not None:
        _record_memo_delta(evaluator.stats, solver, before)
    return result.table(query.name), evaluator.stats


def reachability_program(
    forwarding: str = "F",
    result: str = "R",
    per_flow: bool = False,
) -> Program:
    """The q4/q5 recursive program.

    2-ary: ``R(n1,n2) :- F(n1,n2).  R(n1,n2) :- F(n1,n3), R(n3,n2).``
    Per-flow (3-ary) adds the flow attribute threaded through, as in
    Listing 2.
    """
    if per_flow:
        f, n1, n2, n3 = (Variable(n) for n in ("f", "n1", "n2", "n3"))
        return Program(
            [
                Rule(
                    Atom(result, [f, n1, n2]),
                    [Literal(Atom(forwarding, [f, n1, n2]))],
                    label="q4",
                ),
                Rule(
                    Atom(result, [f, n1, n2]),
                    [
                        Literal(Atom(forwarding, [f, n1, n3])),
                        Literal(Atom(result, [f, n3, n2])),
                    ],
                    label="q5",
                ),
            ]
        )
    n1, n2, n3 = (Variable(n) for n in ("n1", "n2", "n3"))
    return Program(
        [
            Rule(Atom(result, [n1, n2]), [Literal(Atom(forwarding, [n1, n2]))], label="q4"),
            Rule(
                Atom(result, [n1, n2]),
                [
                    Literal(Atom(forwarding, [n1, n3])),
                    Literal(Atom(result, [n3, n2])),
                ],
                label="q5",
            ),
        ]
    )


class ReachabilityAnalyzer:
    """All-pairs reachability over a forwarding c-table, plus patterns.

    Parameters
    ----------
    database:
        Holds the forwarding c-table (named ``forwarding``).
    solver:
        Decides/prunes conditions; its domain map must cover the
        link-state variables.
    per_flow:
        Use the 3-ary per-flow schema of Listing 2.
    """

    def __init__(
        self,
        database: Database,
        solver: ConditionSolver,
        forwarding: str = "F",
        per_flow: bool = False,
        jobs: int = 1,
        checkpoint=None,
        optimize: bool = False,
    ):
        self.database = database
        self.solver = solver
        self.forwarding = forwarding
        self.per_flow = per_flow
        #: ``--optimize``: a shared solver-free condition precheck over
        #: the solver's domain map; per-tuple sat/entailment decisions
        #: the static classifier can discharge never reach the solver.
        self.optimize = bool(optimize)
        self._precheck = None
        if self.optimize:
            from ..analysis.optimize import ConditionPrecheck

            self._precheck = ConditionPrecheck(solver.domains)
        #: Default worker count for :meth:`under_patterns` fan-out.
        self.jobs = max(1, int(jobs))
        #: Optional :class:`~repro.robustness.checkpoint.CheckpointJournal`;
        #: when set, the computed R table and every pattern-query result
        #: become durable as they finish, and a resumed run replays them
        #: instead of recomputing.
        self.checkpoint = checkpoint
        self.stats = EvalStats()
        self._reach_db: Optional[Database] = None
        self._reach_storage = None

    # -- the recursive core (q4-q5) -------------------------------------------

    def compute(self) -> CTable:
        """Run q4/q5 to fixpoint; caches and returns the R table.

        With a checkpoint attached, a durable R table from an earlier
        (killed) run is replayed instead of re-running the fixpoint,
        and a freshly computed table is journaled before returning.
        """
        from ..engine.storage import Storage

        reach_key = {"unit": "reach", "per_flow": self.per_flow}
        if self.checkpoint is not None:
            from ..robustness.checkpoint import stats_from_obj, table_from_obj

            payload = self.checkpoint.get("table", reach_key)
            if payload is not None:
                self._reach_db = Database([table_from_obj(payload["table"])])
                self._reach_storage = Storage(self._reach_db)
                self.stats.add(stats_from_obj(payload["stats"]))
                return self._reach_db.table("R")

        program = reachability_program(self.forwarding, "R", self.per_flow)
        evaluator = FaureEvaluator(
            self.database, solver=self.solver, precheck=self._precheck
        )
        before = _memo_snapshot(self.solver) if self.solver is not None else None
        self._reach_db = evaluator.evaluate(program)
        if before is not None:
            _record_memo_delta(evaluator.stats, self.solver, before)
        self._reach_storage = Storage(self._reach_db)
        self.stats.add(evaluator.stats)
        if self.checkpoint is not None:
            from ..robustness.checkpoint import stats_to_obj, table_to_obj

            self.checkpoint.record(
                "table",
                reach_key,
                {
                    "table": table_to_obj(self._reach_db.table("R")),
                    "stats": stats_to_obj(evaluator.stats),
                },
            )
        return self._reach_db.table("R")

    @property
    def reach_table(self) -> CTable:
        if self._reach_db is None:
            self.compute()
        return self._reach_db.table("R")

    # -- failure-pattern queries (q6-q8 style) -------------------------------------

    def under_pattern(
        self,
        pattern: Condition,
        name: str = "T",
        source: Optional[Hashable] = None,
        dest: Optional[Hashable] = None,
        flow: Optional[Hashable] = None,
    ) -> Tuple[CTable, EvalStats]:
        """Reachability restricted by a failure-pattern condition.

        ``pattern`` is a condition over link-state c-variables (e.g.
        ``x̄ + ȳ + z̄ = 1``); ``source``/``dest``/``flow`` optionally pin
        endpoints as in q7.  Returns the derived c-table and the
        per-query stats (sql vs solver split).
        """
        if self._reach_db is None:
            self.compute()
        query = PatternQuery(pattern, name=name, source=source, dest=dest, flow=flow)
        table, stats = run_pattern_query(
            self._reach_db, self.solver, self.per_flow, query,
            storage=self._reach_storage, precheck=self._precheck,
        )
        self.stats.add(stats)
        return table, stats

    def _query_key(self, query: PatternQuery) -> Dict:
        """The checkpoint identity of one pattern query."""
        from ..ctable.io import condition_to_obj

        return {
            "unit": "pattern",
            "pattern": condition_to_obj(query.pattern),
            "name": query.name,
            "source": query.source,
            "dest": query.dest,
            "flow": query.flow,
            "per_flow": self.per_flow,
        }

    def under_patterns(
        self,
        queries: Sequence[PatternQuery],
        jobs: Optional[int] = None,
        executor=None,
    ) -> List[Tuple[CTable, EvalStats]]:
        """Run independent pattern queries, optionally across a pool.

        ``jobs=1`` is exactly a loop over :meth:`under_pattern`.  With
        ``jobs > 1`` the computed reachability database ships to each
        worker once (pool initializer) and queries fan out; results and
        their :class:`EvalStats` merge back **in query order**, with
        worker CPU accounted in ``stats.extra["parallel_cpu_seconds"]``
        and shard/wall counters alongside.  Each parallel query runs
        under a governor rebuilt from the parent's remaining budgets,
        with its own deterministic per-query fault schedule.

        With a checkpoint attached, queries whose results are already
        durable are replayed (never re-run), and each freshly computed
        result is journaled as it completes — so a killed run resumes
        with zero repeated queries.
        """
        if self._reach_db is None:
            self.compute()
        jobs = self.jobs if jobs is None else jobs

        results: Dict[int, Tuple[CTable, EvalStats]] = {}
        pending: List[Tuple[int, PatternQuery]] = []
        if self.checkpoint is not None:
            from ..robustness.checkpoint import stats_from_obj, table_from_obj

            for i, q in enumerate(queries):
                payload = self.checkpoint.get("pattern", self._query_key(q))
                if payload is None:
                    pending.append((i, q))
                    continue
                stats = stats_from_obj(payload["stats"])
                self.stats.add(stats)
                results[i] = (table_from_obj(payload["table"]), stats)
        else:
            pending = list(enumerate(queries))

        if pending:
            computed = self._run_patterns([q for _, q in pending], jobs, executor)
            for (i, q), outcome in zip(pending, computed):
                if self.checkpoint is not None:
                    from ..robustness.checkpoint import stats_to_obj, table_to_obj

                    self.checkpoint.record(
                        "pattern",
                        self._query_key(q),
                        {
                            "table": table_to_obj(outcome[0]),
                            "stats": stats_to_obj(outcome[1]),
                        },
                    )
                results[i] = outcome
        return [results[i] for i in range(len(queries))]

    def _run_patterns(
        self,
        queries: Sequence[PatternQuery],
        jobs: int,
        executor,
    ) -> List[Tuple[CTable, EvalStats]]:
        """The actual serial-or-parallel pattern execution."""
        if jobs <= 1 or len(queries) <= 1:
            return [
                self.under_pattern(
                    q.pattern, name=q.name, source=q.source, dest=q.dest, flow=q.flow
                )
                for q in queries
            ]
        from ..parallel.executor import balanced_shards
        from ..parallel.shared_memo import reads_allowed, session_for
        from ..parallel.spec import GovernorSpec
        from ..parallel.supervisor import SupervisedExecutor, TaskLost, fold_failures
        from ..parallel.worker import init_pattern_worker, run_pattern_shard
        from ..robustness.errors import WorkerLost

        executor = executor or SupervisedExecutor(jobs)
        governor = self.solver.governor
        session = session_for(self.solver.memo, executor)
        reads = reads_allowed(governor)
        store_hits_before = 0
        if session is not None:
            session.enable_parent_reads(reads)
            store_hits_before = session.store.hits

        def _initargs() -> tuple:
            # Re-snapshot the live governor on every (re)spawn so a
            # retried query honors the original deadline — the spec
            # serializes *remaining* seconds (see GovernorSpec).
            # The memo seed and the warm storage ride along only for
            # ungoverned runs (same rule as store reads): a warm worker
            # memo changes governed call sequences.  Under fork both are
            # copy-on-write, so a worker starts exactly as warm as the
            # serial path instead of re-solving the compute phase.
            return (
                self._reach_db,
                self.solver.domains,
                self.per_flow,
                GovernorSpec.from_governor(governor),
                self.solver.enumeration_limit,
                self.solver.memo is not None,
                self.solver.fast_path,
                self.optimize,
                session.handle(reads) if session is not None else None,
                self.solver.memo._entries
                if reads and self.solver.memo is not None
                else None,
                self._reach_storage,
            )

        # Coarse sharding: a few queries per pickle instead of one task
        # per query — 2 shards per worker keeps the pool load-balanced
        # when query costs are skewed without reverting to per-query IPC.
        shards = balanced_shards(list(queries), jobs * 2)
        start = time.perf_counter()
        results = executor.map(
            run_pattern_shard,
            shards,
            initializer=init_pattern_worker,
            initargs=_initargs(),
            refresh_initargs=_initargs,
        )
        wall = time.perf_counter() - start
        fold_failures(executor, governor=governor, stats=self.stats)
        out: List[Tuple[CTable, EvalStats]] = []
        for shard_index, shard_res in enumerate(results):
            if isinstance(shard_res, TaskLost):
                # Unlike pruning (keep the tuple) or verification
                # (INCONCLUSIVE), a missing pattern-query answer has no
                # sound partial form — the loss must surface.
                raise WorkerLost(
                    f"pattern shard {shard_res.task_index} "
                    f"({len(shards[shard_index])} queries) lost: {shard_res.reason}",
                    task_index=shard_res.task_index,
                )
            for res in shard_res["results"]:
                stats: EvalStats = res["stats"]
                self.stats.add(stats)
                solver_stats = res["solver_stats"]
                for field_name, value in solver_stats.items():
                    if field_name == "time_seconds":
                        self.stats.extra["parallel_cpu_seconds"] = (
                            self.stats.extra.get("parallel_cpu_seconds", 0.0) + value
                        )
                        continue
                    setattr(
                        self.solver.stats,
                        field_name,
                        getattr(self.solver.stats, field_name) + value,
                    )
                if res.get("events") is not None and governor is not None:
                    governor.absorb(res["events"])
                out.append((res["table"], stats))
            shared = shard_res.get("shared_memo")
            if shared is not None:
                for field_name, value in shared.items():
                    key = f"shared_memo_{field_name}"
                    self.stats.extra[key] = self.stats.extra.get(key, 0) + value
        self.stats.extra["parallel_shards"] = (
            self.stats.extra.get("parallel_shards", 0) + len(shards)
        )
        self.stats.extra["parallel_wall_seconds"] = (
            self.stats.extra.get("parallel_wall_seconds", 0.0) + wall
        )
        self.stats.extra["parallel_tasks"] = (
            self.stats.extra.get("parallel_tasks", 0) + executor.last_tasks
        )
        self.stats.extra["ipc_bytes"] = (
            self.stats.extra.get("ipc_bytes", 0) + executor.last_ipc_bytes
        )
        if session is not None:
            self.stats.extra["shared_memo_hits"] = self.stats.extra.get(
                "shared_memo_hits", 0
            ) + (session.store.hits - store_hits_before)
        return out

    def exactly_k_up(
        self, variables: Sequence[CVariable], k: int, name: str = "T"
    ) -> Tuple[CTable, EvalStats]:
        """Pattern: exactly ``k`` of the given links are up (q6 shape)."""
        return self.under_pattern(LinearAtom(list(variables), "=", k), name=name)

    def at_least_one_failure(
        self, variables: Sequence[CVariable], name: str = "T"
    ) -> Tuple[CTable, EvalStats]:
        """Pattern: at least one of the given links failed (q8 shape)."""
        bound = len(variables) - 1
        return self.under_pattern(LinearAtom(list(variables), "<=", bound), name=name)

    # -- certain / possible classification ---------------------------------

    def classify(self) -> "AnswerSet":
        """Split all-pairs reachability into certain and possible facts.

        Certain pairs are reachable under *every* failure combination
        (the safe set); possible pairs come with the exact condition.
        """
        from ..faurelog.answers import classify_answers

        return classify_answers(self.reach_table, self.solver)

    def certain_pairs(self) -> set:
        """(src, dst) pairs reachable in every world."""
        answers = self.classify()
        offset = 1 if self.per_flow else 0
        return {
            (row[offset].value, row[offset + 1].value) for row in answers.certain
        }

    # -- concrete-world probes ----------------------------------------------------

    def holds_in_world(
        self,
        src: Hashable,
        dst: Hashable,
        assignment: Dict[CVariable, int],
        flow: Optional[Hashable] = None,
    ) -> bool:
        """Does src reach dst in the world given by the assignment?"""
        table = self.reach_table
        consts = {v: Constant(int(b)) for v, b in assignment.items()}
        want = []
        if self.per_flow:
            want.append(Constant(flow))
        want.extend([Constant(src), Constant(dst)])
        for tup in table:
            if list(tup.values) == want and tup.condition.evaluate(consts):
                return True
        return False
