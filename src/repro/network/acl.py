"""Packet filters (ACLs) over partially known rule sets.

The §5 firewall relation ``Fw(subnet, server)`` records *where* a
firewall sits; this module models *what it does*: ordered
permit/deny rules over (source, destination, port-range) — including
rules whose fields are **unknown** (c-variables), e.g. an ACL managed by
another team of which only the shape is visible.

Compilation follows first-match semantics into a single c-table
``Acl(src, dst, port)`` of *permitted* flows: rule *i* contributes its
match set minus the match sets of rules 0..i-1, expressed as conditions
— the same once-for-all encoding §4 uses for failures.  Port ranges
become order comparisons over the port attribute, exercising the
solver's interval reasoning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..ctable.condition import (
    Comparison,
    Condition,
    TRUE,
    conjoin,
    eq,
    ge,
    le,
)
from ..ctable.table import CTable, Database
from ..ctable.terms import Constant, CVariable, Term, as_term

__all__ = ["AclRule", "Acl", "ANY"]

#: Wildcard field value.
ANY = None


@dataclass(frozen=True)
class AclRule:
    """One permit/deny rule; ``None`` fields match anything.

    ``src``/``dst`` may be constants or c-variables (unknown endpoints);
    ``ports`` is a (lo, hi) range, a single port, or ``None`` for all.
    """

    action: str  # "permit" | "deny"
    src: Optional[Union[str, CVariable]] = ANY
    dst: Optional[Union[str, CVariable]] = ANY
    ports: Optional[Union[int, Tuple[int, int]]] = ANY

    def __post_init__(self):
        if self.action not in ("permit", "deny"):
            raise ValueError(f"action must be permit/deny, got {self.action!r}")

    def match_condition(self, src: Term, dst: Term, port: Term) -> Condition:
        """The condition under which this rule matches a packet tuple."""
        parts: List[Condition] = []
        if self.src is not ANY:
            parts.append(Comparison(src, "=", as_term(self.src)).constant_fold())
        if self.dst is not ANY:
            parts.append(Comparison(dst, "=", as_term(self.dst)).constant_fold())
        if self.ports is not ANY:
            if isinstance(self.ports, tuple):
                lo, hi = self.ports
                parts.append(Comparison(port, ">=", Constant(lo)).constant_fold())
                parts.append(Comparison(port, "<=", Constant(hi)).constant_fold())
            else:
                parts.append(Comparison(port, "=", Constant(self.ports)).constant_fold())
        return conjoin(parts)


class Acl:
    """An ordered rule list with first-match semantics.

    ``default`` applies when no rule matches (real ACLs default-deny).
    """

    def __init__(self, rules: Sequence[AclRule] = (), default: str = "deny"):
        if default not in ("permit", "deny"):
            raise ValueError(f"default must be permit/deny, got {default!r}")
        self.rules: List[AclRule] = list(rules)
        self.default = default

    def permit(self, src=ANY, dst=ANY, ports=ANY) -> "Acl":
        self.rules.append(AclRule("permit", src, dst, ports))
        return self

    def deny(self, src=ANY, dst=ANY, ports=ANY) -> "Acl":
        self.rules.append(AclRule("deny", src, dst, ports))
        return self

    def decision_condition(self, src: Term, dst: Term, port: Term) -> Condition:
        """The condition under which the packet is *permitted*.

        First-match: rule i decides iff it matches and no earlier rule
        does; the permit condition is the union over permitting rules of
        (match_i ∧ ∧_{j<i} ¬match_j), plus the default branch.
        """
        src, dst, port = as_term(src), as_term(dst), as_term(port)
        permitted: List[Condition] = []
        earlier: List[Condition] = []
        for rule in self.rules:
            match = rule.match_condition(src, dst, port)
            decides = conjoin([match] + [m.negate() for m in earlier])
            if rule.action == "permit":
                permitted.append(decides)
            earlier.append(match)
        if self.default == "permit":
            permitted.append(conjoin([m.negate() for m in earlier]))
        from ..ctable.condition import disjoin

        return disjoin(permitted)

    def permits(self, src, dst, port, solver) -> str:
        """'always' / 'never' / 'conditional' for a concrete packet."""
        condition = self.decision_condition(src, dst, port)
        if solver.is_valid(condition):
            return "always"
        if not solver.is_satisfiable(condition):
            return "never"
        return "conditional"

    def permitted_table(
        self,
        flows: Sequence[Tuple],
        name: str = "Acl",
    ) -> CTable:
        """Compile candidate flows into the permitted-flows c-table.

        Each (src, dst, port) candidate becomes a tuple carrying its
        permit condition (solver pruning later drops never-permitted
        ones); entries may themselves be c-variables.
        """
        table = CTable(name, ["src", "dst", "port"])
        for src, dst, port in flows:
            condition = self.decision_condition(src, dst, port)
            table.add([as_term(src), as_term(dst), as_term(port)], condition)
        return table
