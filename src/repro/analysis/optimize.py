"""The static optimizer: narrow domains, slice rules, pre-classify conditions.

Consumes the whole-program facts of :mod:`repro.analysis.dataflow` and
derives the three sound transformations of ROADMAP items 2–3:

1. **domain narrowing** — the solver the evaluator runs with is rebuilt
   over :func:`~repro.analysis.dataflow.narrow_domains`' map, so
   enumeration and fast-path candidate spaces start small;
2. **query-driven relevance slicing** — a magic-set-style backward pass
   over the dependency graph drops rules that provably cannot reach any
   requested output (F019), and rules whose bodies or closed condition
   conjuncts are statically false are deactivated outright (F016);
3. **static condition classification** — each rule's closed condition
   conjuncts are tagged ``static-true`` / ``static-false`` /
   ``fast-path`` / ``residue`` once, and a :class:`ConditionPrecheck`
   lets the evaluator discharge per-tuple verdicts through the same
   sound semi-decision procedure without a solver call.

Soundness contract (gated by ``tests/analysis/test_dataflow_oracle.py``
exactly like PRs 2/4/7): with the optimizer on or off, rendered results
are byte-identical.  Two mechanisms make that hold:

* every static verdict comes from the one-sided provers
  (:func:`~repro.solver.atoms.fast_sat` and friends) over the narrowed
  map, whose verdicts provably coincide with the solver's;
* fault-injection schedules are *call-indexed*, so every transformation
  that changes the solver call sequence (prechecks, rule deactivation)
  stands down when the governor carries an armed
  :class:`~repro.robustness.faultinject.FaultInjector` — narrowing, which
  preserves the call sequence verbatim, stays on.  See
  :func:`sequence_transforms_allowed`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..ctable.condition import Condition, TRUE, conjoin
from ..ctable.table import Database
from ..ctable.terms import CVariable, Constant
from ..faurelog.ast import Program, ProgramError, Rule
from ..robustness.governor import Governor
from ..solver.atoms import fast_implies, fast_sat
from ..solver.domains import DomainMap
from .dataflow import DataflowResult, NarrowingResult, analyze, narrow_domains
from .diagnostics import Diagnostic
from .passes import rule_name

__all__ = [
    "ConjunctClass",
    "RuleClassification",
    "ConditionPrecheck",
    "OptimizationResult",
    "optimize_program",
    "sequence_transforms_allowed",
]


def sequence_transforms_allowed(governor: Optional[Governor]) -> bool:
    """May call-sequence-changing transformations run under this governor?

    Deterministic fault injection fires on solver-call *indices*; a
    transformation that removes calls would shift every later fault to a
    different call, so replayed chaos runs would diverge.  Prechecks and
    rule deactivation therefore stand down when an injector is armed;
    domain narrowing (same calls, same order) stays active.
    """
    return governor is None or governor.injector is None


class ConditionPrecheck:
    """Sound solver-free verdicts for runtime conditions, with a cache.

    Wraps the tier-0 semi-decision procedures over the (possibly
    narrowed) domain map.  ``True``/``False`` answers are definite and
    provably agree with the full solver; ``None`` sends the caller to
    the solver unchanged.  Unlike solver calls, hits here consume no
    governor budget and count no ``SolverStats`` decisions — that is the
    point: re-discovery per tuple is skipped.
    """

    __slots__ = ("domains", "sat_hits", "implies_hits", "misses", "_sat_cache", "_implies_cache")

    def __init__(self, domains: DomainMap) -> None:
        self.domains = domains
        self.sat_hits = 0
        self.implies_hits = 0
        self.misses = 0
        self._sat_cache: Dict[Condition, Optional[bool]] = {}
        self._implies_cache: Dict[Tuple[Condition, Condition], Optional[bool]] = {}

    def sat_hint(self, condition: Condition) -> Optional[bool]:
        """Definite satisfiability, or ``None`` when undecided statically."""
        try:
            hint = self._sat_cache.get(condition, _MISSING)
        except TypeError:  # pragma: no cover - unhashable payloads
            hint = _MISSING
        if hint is _MISSING:
            hint = fast_sat(condition, self.domains)
            try:
                self._sat_cache[condition] = hint
            except TypeError:  # pragma: no cover
                pass
        if hint is None:
            self.misses += 1
        else:
            self.sat_hits += 1
        return hint

    def implies_hint(self, antecedent: Condition, consequent: Condition) -> Optional[bool]:
        """Definite entailment, or ``None`` when undecided statically."""
        key = (antecedent, consequent)
        try:
            hint = self._implies_cache.get(key, _MISSING)
        except TypeError:  # pragma: no cover
            hint = _MISSING
        if hint is _MISSING:
            hint = fast_implies(antecedent, consequent, self.domains)
            try:
                self._implies_cache[key] = hint
            except TypeError:  # pragma: no cover
                pass
        if hint is None:
            self.misses += 1
        else:
            self.implies_hits += 1
        return hint

    def counters(self) -> Dict[str, int]:
        return {
            "sat_hits": self.sat_hits,
            "implies_hits": self.implies_hits,
            "misses": self.misses,
        }


_MISSING: Optional[bool] = object()  # type: ignore[assignment]


@dataclass(frozen=True)
class ConjunctClass:
    """One closed condition conjunct and its static tag."""

    condition: Condition
    #: ``static-true`` | ``static-false`` | ``fast-path`` | ``residue``.
    tag: str


@dataclass(frozen=True)
class RuleClassification:
    """Static classification of one rule's condition conjuncts."""

    rule: Rule
    conjuncts: Tuple[ConjunctClass, ...]
    #: Overall: ``static-false`` dominates, then ``residue``, then
    #: ``fast-path``; a rule with no closed conjuncts is ``data-only``.
    tag: str

    @property
    def statically_false(self) -> bool:
        return self.tag == "static-false"


def _closed_conjuncts(rule: Rule) -> List[Condition]:
    """Condition conjuncts decidable before any binding: no program
    variables, no bindable c-variables (those unify with stored entries
    at match time and are only known per tuple)."""
    from ..ctable.condition import Comparison
    from ..ctable.terms import Variable

    bindable = rule.bindable_cvariables()

    def closed(condition: Condition) -> bool:
        if any(var in bindable for var in condition.cvariables()):
            return False
        for atom in condition.atoms():
            if isinstance(atom, Comparison) and (
                isinstance(atom.lhs, Variable) or isinstance(atom.rhs, Variable)
            ):
                return False
        return True

    out: List[Condition] = []
    for comparison in rule.comparisons():
        if comparison is not TRUE and closed(comparison):
            out.append(comparison)
    for literal in rule.literals():
        if literal.annotation is not TRUE and closed(literal.annotation):
            out.append(literal.annotation)
    head_ann = rule.head_annotation
    if head_ann is not None and head_ann is not TRUE and closed(head_ann):
        out.append(head_ann)
    return out


def _classify_rule(rule: Rule, domains: DomainMap) -> RuleClassification:
    conjuncts: List[ConjunctClass] = []
    overall = "data-only"
    for condition in _closed_conjuncts(rule):
        verdict = fast_sat(condition, domains)
        if verdict is False:
            tag = "static-false"
        elif fast_sat(condition.negate(), domains) is False:
            tag = "static-true"
        elif verdict is not None:
            tag = "fast-path"
        else:
            tag = "residue"
        conjuncts.append(ConjunctClass(condition, tag))
    tags = {c.tag for c in conjuncts}
    if "static-false" in tags:
        overall = "static-false"
    elif len(conjuncts) > 1 and fast_sat(
        conjoin(c.condition for c in conjuncts), domains
    ) is False:
        # Pairwise contradictions ($u = 1, $u != 1) that no conjunct
        # exhibits alone.
        overall = "static-false"
    elif "residue" in tags:
        overall = "residue"
    elif "fast-path" in tags or "static-true" in tags:
        overall = "fast-path"
    return RuleClassification(rule=rule, conjuncts=tuple(conjuncts), tag=overall)


@dataclass
class OptimizationResult:
    """Everything the pre-evaluation pass derived.

    ``program`` is the input program, untouched.  ``sliced`` drops only
    query-irrelevant rules (safe to *evaluate* — callers print requested
    outputs only); statically-false rules stay in the program so empty
    IDB tables keep existing, and are skipped via ``inactive`` instead.
    """

    program: Program
    sliced: Program
    narrowing: NarrowingResult
    dataflow: DataflowResult
    classifications: List[RuleClassification]
    #: Indices (into ``sliced``'s rule list) of deactivated rules.
    inactive: FrozenSet[int]
    #: Rules dropped from ``sliced`` by query relevance (F019).
    sliced_rules: List[Rule]
    #: Rules deactivated as statically false / unmatchable (F016).
    eliminated_rules: List[Rule]
    diagnostics: List[Diagnostic] = field(default_factory=list)
    precheck: Optional[ConditionPrecheck] = None

    @property
    def narrowed(self) -> DomainMap:
        """The narrowed domain map (the declared map when nothing shrank)."""
        return self.narrowing.domains

    def precheck_for(self, governor: Optional[Governor]) -> Optional[ConditionPrecheck]:
        """The runtime precheck, or ``None`` when it must stand down."""
        if not sequence_transforms_allowed(governor):
            return None
        return self.precheck

    def inactive_for(self, governor: Optional[Governor]) -> FrozenSet[int]:
        """Deactivated rule indices, or none when they must stand down."""
        if not sequence_transforms_allowed(governor):
            return frozenset()
        return self.inactive

    def summary_counts(self) -> Dict[str, int]:
        tags: Dict[str, int] = {}
        for cls in self.classifications:
            for conjunct in cls.conjuncts:
                tags[conjunct.tag] = tags.get(conjunct.tag, 0) + 1
        return {
            "narrowed_domains": len(self.narrowing.narrowed),
            "sliced_rules": len(self.sliced_rules),
            "eliminated_rules": len(self.eliminated_rules),
            "static_true": tags.get("static-true", 0),
            "static_false": tags.get("static-false", 0),
            "fast_path": tags.get("fast-path", 0),
            "residue": tags.get("residue", 0),
        }

    def describe(self) -> str:
        """Human-readable plan section (EXPLAIN / ``--optimize-report``)."""
        lines: List[str] = []
        if self.narrowing.narrowed:
            parts = ", ".join(
                f"{name} {before}→{after}"
                for name, (before, after) in sorted(self.narrowing.narrowed.items())
            )
            lines.append(f"[optimize] narrowed {len(self.narrowing.narrowed)} domain(s): {parts}")
        if self.sliced_rules:
            names = ", ".join(rule_name(r) for r in self.sliced_rules)
            lines.append(f"[optimize] sliced {len(self.sliced_rules)} rule(s) irrelevant to the query: {names}")
        if self.eliminated_rules:
            names = ", ".join(rule_name(r) for r in self.eliminated_rules)
            lines.append(f"[optimize] deactivated {len(self.eliminated_rules)} statically-false rule(s): {names}")
        counts = self.summary_counts()
        lines.append(
            "[optimize] conjuncts: {static_true} static-true, {static_false} static-false, "
            "{fast_path} fast-path, {residue} residue".format(**counts)
        )
        if self.dataflow.widened:
            slots = ", ".join(f"{p}[{i}]" for p, i in sorted(self.dataflow.widened))
            lines.append(f"[optimize] widening applied at: {slots}")
        return "\n".join(lines)


def _relevant_predicates(program: Program, outputs: Iterable[str]) -> Set[str]:
    """Outputs plus everything they transitively depend on (magic-set
    style backward reachability over the dependency graph)."""
    from ..faurelog.stratify import dependency_graph
    import networkx as nx

    graph = dependency_graph(program)
    relevant: Set[str] = set()
    for out in outputs:
        if out in graph:
            relevant.add(out)
            relevant |= set(nx.ancestors(graph, out))
        else:
            relevant.add(out)
    return relevant


def optimize_program(
    program: Program,
    database: Database,
    domains: DomainMap,
    outputs: Optional[Iterable[str]] = None,
) -> OptimizationResult:
    """Run the whole pre-evaluation pass and package the transformations.

    ``outputs`` enables query-driven relevance slicing; without it every
    rule is considered relevant (the caller asked for everything).  The
    pass never raises on analyzable programs; unstratifiable or
    otherwise unevaluable programs yield a no-op result (the evaluator
    will report the real error).
    """
    diagnostics: List[Diagnostic] = []

    try:
        flow = analyze(program, database, domains)
    except ProgramError:
        flow = DataflowResult()

    narrowing = narrow_domains(program, database, domains)
    narrowed = narrowing.domains
    for name, (before, after) in sorted(narrowing.narrowed.items()):
        diagnostics.append(
            Diagnostic.make(
                "F018",
                f"domain of ${name} narrowed from {before} to {after} "
                f"value(s) (distinguishable classes under the program's atoms)",
            )
        )
    for pred, index in sorted(flow.widened):
        diagnostics.append(
            Diagnostic.make(
                "F020",
                f"widening applied at {pred}[{index}] "
                f"(abstract value jumped to {flow.fact(pred, index).describe()})",
            )
        )

    # -- relevance slicing (F019) --------------------------------------
    output_list = list(outputs) if outputs is not None else None
    sliced_rules: List[Rule] = []
    if output_list:
        relevant = _relevant_predicates(program, output_list)
        kept = []
        for rule in program:
            if rule.head.predicate in relevant:
                kept.append(rule)
            else:
                sliced_rules.append(rule)
                diagnostics.append(
                    Diagnostic.make(
                        "F019",
                        f"rule sliced: {rule.head.predicate} cannot reach "
                        f"output(s) {', '.join(sorted(output_list))}",
                        span=rule.span,
                        rule=rule_name(rule),
                    )
                )
        sliced = Program(kept, check_arities=False, source=program.source) if sliced_rules else program
    else:
        sliced = program

    # -- static classification + deactivation (F016/F017) -------------
    classifications: List[RuleClassification] = []
    inactive: Set[int] = set()
    eliminated: List[Rule] = []
    unreachable = {id(r) for r in flow.unreachable}
    for index, rule in enumerate(sliced):
        cls = _classify_rule(rule, narrowed)
        classifications.append(cls)
        reason: Optional[str] = None
        if cls.statically_false:
            reason = "its condition is unsatisfiable under the declared domains"
        elif id(rule) in unreachable:
            reason = "its body can never match under the inferred argument values"
        if reason is not None:
            inactive.add(index)
            eliminated.append(rule)
            diagnostics.append(
                Diagnostic.make(
                    "F016",
                    f"rule can never contribute: {reason}",
                    span=rule.span,
                    rule=rule_name(rule),
                )
            )
        for conjunct in cls.conjuncts:
            if conjunct.tag == "static-true":
                diagnostics.append(
                    Diagnostic.make(
                        "F017",
                        f"vacuous condition conjunct: {conjunct.condition} "
                        f"holds for every assignment under the declared domains",
                        span=rule.span,
                        rule=rule_name(rule),
                    )
                )

    return OptimizationResult(
        program=program,
        sliced=sliced,
        narrowing=narrowing,
        dataflow=flow,
        classifications=classifications,
        inactive=frozenset(inactive),
        sliced_rules=sliced_rules,
        eliminated_rules=eliminated,
        diagnostics=diagnostics,
        precheck=ConditionPrecheck(narrowed),
    )
