"""A sound interval + equality abstract domain over conditions.

The machinery now lives in :mod:`repro.solver.atoms`, where it doubles
as the solver's interval/atom fast path; this module re-exports the
lint-facing surface so the analysis pipeline and the solver can never
disagree — F010/F011 (contradiction/tautology) diagnostics and the
solver's tier-0 verdicts are computed by the *same* functions.

The one-sided contract is unchanged:

* :func:`prove_unsat` returns ``True`` only when the condition is
  unsatisfiable under **every** assignment of its variables — whatever
  the domain declarations in play;
* :func:`prove_valid` returns ``True`` only when the condition holds
  under every assignment (it proves the *negation* unsatisfiable).

Both may answer ``UNKNOWN`` (via :func:`abstract_sat`) on conditions
the full solver settles; they never report a false positive.  See the
docstrings in :mod:`repro.solver.atoms` for the soundness argument and
``tests/analysis/test_differential.py`` for the differential check
against the solver.
"""

from __future__ import annotations

from ..solver.atoms import (  # noqa: F401  (re-exported surface)
    _DEPTH_BUDGET,
    _SPLIT_BUDGET,
    AbstractResult,
    _UnionFind,
    _conjunction_unsat,
    _is_unknown_term,
    _strict_cycle,
    _unsat,
    abstract_sat,
    prove_unsat,
    prove_valid,
)

__all__ = ["AbstractResult", "abstract_sat", "prove_unsat", "prove_valid"]
