"""A sound interval + equality abstract domain over conditions.

The NP-complete condition solver (:mod:`repro.solver`) decides exact
satisfiability; this module answers the *cheap* version of the question
with a one-sided guarantee, so the lint pipeline can flag contradictory
and vacuous conditions without ever invoking a decision procedure:

* :func:`prove_unsat` returns ``True`` only when the condition is
  unsatisfiable under **every** assignment of its variables — whatever
  the domain declarations in play;
* :func:`prove_valid` returns ``True`` only when the condition holds
  under every assignment (it proves the *negation* unsatisfiable).

Soundness argument
------------------
The abstraction reasons over the free structure of the condition: it
assumes nothing about domains, so any contradiction it finds (interval
emptiness, equality/disequality clashes, strict-order cycles) falsifies
the condition pointwise for *arbitrary* values.  Restricting variables
to declared domains only removes assignments, so

* ``prove_unsat(c)``  ⇒  ``ConditionSolver.is_satisfiable(c) is False``
* ``prove_valid(c)``  ⇒  ``ConditionSolver.is_valid(c) is True``

for every domain map.  The converse never holds in general (the
abstraction may answer ``UNKNOWN`` on conditions the solver settles,
e.g. finite-domain exhaustion arguments), which is exactly the
contract: **no false positives**, verified differentially against the
solver in ``tests/analysis/test_differential.py``.

Machinery
---------
Conditions are first rewritten into the canonical normal form of
:mod:`repro.solver.canonical` (negation pushed to atoms, per-variable
interval tightening, absorption).  On the canonical form:

* a conjunction merges ``=``-linked terms with a union-find, pools the
  ``term op constant`` literals of each equivalence class into one
  interval/equality group (re-using the canonicalizer's group
  tightening), rejects disequalities within a class, evaluates
  comparisons between constant-pinned classes, and looks for a strict
  edge inside a cycle of the ``<``/``≤`` graph;
* linear atoms with identical coefficient vectors are pooled the same
  way, treating the linear form as a pseudo-variable;
* a disjunction is unsatisfiable only when every child is;
* a disjunction nested inside a conjunction is expanded by case split
  (each disjunct conjoined with the remaining facts) under a small
  budget — beyond the budget the verdict degrades to ``UNKNOWN``.

Program variables are treated exactly like c-variables: both stand for
unknown values, and the proofs quantify over all of them.
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ctable.condition import (
    _FLIPPED_OP,
    And,
    Comparison,
    Condition,
    FalseCond,
    LinearAtom,
    Or,
    TrueCond,
    conjoin,
)
from ..ctable.terms import Constant, CVariable, Term, Variable
from ..solver.canonical import _Group, _cmp, canonicalize

__all__ = ["AbstractResult", "abstract_sat", "prove_unsat", "prove_valid"]

#: Maximum case splits (product of disjunct counts) expanded inside one
#: conjunction before the verdict degrades to UNKNOWN.
_SPLIT_BUDGET = 64

#: Maximum recursion depth through nested ∧/∨ alternations.
_DEPTH_BUDGET = 6


class AbstractResult(enum.Enum):
    """Verdict of the abstract analysis; UNKNOWN is always permitted."""

    UNSAT = "unsat"
    VALID = "valid"
    UNKNOWN = "unknown"


class _UnionFind:
    """Union-find over terms (program variables and c-variables alike)."""

    def __init__(self) -> None:
        self._parent: Dict[Term, Term] = {}

    def find(self, term: Term) -> Term:
        parent = self._parent.get(term, term)
        if parent is term:
            return term
        root = self.find(parent)
        self._parent[term] = root
        return root

    def union(self, a: Term, b: Term) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra is not rb and ra != rb:
            self._parent[ra] = rb


def _is_unknown_term(term: Term) -> bool:
    return isinstance(term, (CVariable, Variable))


def _strict_cycle(
    edges: List[Tuple[Term, Term, bool]], uf: _UnionFind
) -> bool:
    """True when the </≤ graph has a cycle through a strict edge.

    Edges are (smaller, larger, strict) over union-find representatives.
    A strict self-loop (x < x after equality merging) is the degenerate
    case.  The search is a DFS reachability check per strict edge —
    fine at lint scale (conditions have tens of atoms).
    """
    adjacency: Dict[Term, Set[Term]] = {}
    for lo, hi, _ in edges:
        adjacency.setdefault(uf.find(lo), set()).add(uf.find(hi))
    for lo, hi, strict in edges:
        if not strict:
            continue
        lo, hi = uf.find(lo), uf.find(hi)
        if lo == hi:
            return True  # x < x
        # strict edge lo -> hi: contradiction if hi reaches lo again.
        seen: Set[Term] = set()
        stack = [hi]
        while stack:
            node = stack.pop()
            if node == lo:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(adjacency.get(node, ()))
    return False


def _conjunction_unsat(children: Sequence[Condition], depth: int) -> bool:
    """Sound unsatisfiability check for a conjunction of canonical facts."""
    uf = _UnionFind()
    var_const: List[Comparison] = []
    neq_pairs: List[Tuple[Term, Term]] = []
    order_edges: List[Tuple[Term, Term, bool]] = []  # (lo, hi, strict)
    linear: List[LinearAtom] = []
    disjunctions: List[Or] = []

    for child in children:
        if isinstance(child, FalseCond):
            return True
        if isinstance(child, TrueCond):
            continue
        if isinstance(child, Or):
            disjunctions.append(child)
            continue
        if isinstance(child, And):  # canonical forms are flat, but be safe
            if _conjunction_unsat(child.children, depth):
                return True
            continue
        if isinstance(child, LinearAtom):
            linear.append(child)
            continue
        if not isinstance(child, Comparison):
            continue  # unknown node kind: ignore, stays sound
        lhs, op, rhs = child.lhs, child.op, child.rhs
        if isinstance(lhs, Constant) and _is_unknown_term(rhs):
            # Normalize constant-left atoms so the pooling below sees
            # every var-vs-const fact in one orientation.
            lhs, op, rhs = rhs, _FLIPPED_OP[op], lhs
            child = Comparison(lhs, op, rhs)
            lhs, op, rhs = child.lhs, child.op, child.rhs
        if _is_unknown_term(lhs) and isinstance(rhs, Constant):
            var_const.append(child)
        elif _is_unknown_term(lhs) and _is_unknown_term(rhs):
            if op == "=":
                uf.union(lhs, rhs)
            elif op == "!=":
                neq_pairs.append((lhs, rhs))
            elif op == "<":
                order_edges.append((lhs, rhs, True))
            elif op == "<=":
                order_edges.append((lhs, rhs, False))
            elif op == ">":
                order_edges.append((rhs, lhs, True))
            elif op == ">=":
                order_edges.append((rhs, lhs, False))
        # Constant-vs-constant atoms were folded away by canonicalize.

    # Pool the var-op-const literals of each equivalence class.
    groups: Dict[Term, _Group] = {}
    for cmp_atom in var_const:
        rep = uf.find(cmp_atom.lhs)
        group = groups.get(rep)
        if group is None:
            anchor = rep if isinstance(rep, CVariable) else CVariable(f"_class_{id(rep)}")
            group = _Group(anchor)
            groups[rep] = group
        assert isinstance(cmp_atom.rhs, Constant)
        group.add(cmp_atom.op, cmp_atom.rhs.value)
    for group in groups.values():
        if group.tighten_and() is None:
            return True

    # Disequalities: within one class, or between constant-pinned classes.
    def pinned(rep: Term) -> Optional[object]:
        group = groups.get(rep)
        if group is not None and group.eqs:
            return group.eqs[0]
        return None

    for a, b in neq_pairs:
        ra, rb = uf.find(a), uf.find(b)
        if ra == rb:
            return True  # x = y ∧ x ≠ y
        va, vb = pinned(ra), pinned(rb)
        if va is not None and vb is not None and va == vb:
            return True  # both pinned to the same constant

    # Order comparisons between constant-pinned classes, plus equal
    # classes under a strict order, plus strict cycles.
    for lo, hi, strict in order_edges:
        rlo, rhi = uf.find(lo), uf.find(hi)
        if rlo == rhi and strict:
            return True  # x = y ∧ x < y
        vlo, vhi = pinned(rlo), pinned(rhi)
        if vlo is not None and vhi is not None:
            try:
                holds = _cmp("<" if strict else "<=", vlo, vhi)
            except TypeError:
                holds = True  # incomparable payloads: no conclusion
            if not holds:
                return True
    if _strict_cycle(order_edges, uf):
        return True

    # Linear atoms: pool by coefficient vector, treat the linear form as
    # one pseudo-variable and reuse the interval tightening.
    by_coeffs: Dict[Tuple, _Group] = {}
    for atom in linear:
        group = by_coeffs.get(atom.coeffs)
        if group is None:
            group = _Group(CVariable(f"_lin_{len(by_coeffs)}"))
            by_coeffs[atom.coeffs] = group
        group.add(atom.op, atom.bound)
    for group in by_coeffs.values():
        if group.tighten_and() is None:
            return True

    # Case-split over nested disjunctions, under budget.
    if disjunctions and depth < _DEPTH_BUDGET:
        splits = 1
        for dis in disjunctions:
            splits *= len(dis.children)
        if splits <= _SPLIT_BUDGET:
            plain = [c for c in children if not isinstance(c, Or)]
            for combo in itertools.product(*[d.children for d in disjunctions]):
                arm = canonicalize(conjoin(plain + list(combo)))
                if not _unsat(arm, depth + 1):
                    return False
            return True
    return False


def _unsat(canonical: Condition, depth: int) -> bool:
    """Unsatisfiability of an already-canonical condition."""
    if isinstance(canonical, FalseCond):
        return True
    if isinstance(canonical, (TrueCond, Comparison, LinearAtom)):
        # canonicalize folds every decidable atom; a surviving atom has a
        # free unknown, hence a satisfying assignment over *some* value.
        # (Its domain might still rule it out — that is the solver's
        # business, and answering False here keeps us sound.)
        return False
    if depth >= _DEPTH_BUDGET:
        return False
    if isinstance(canonical, Or):
        return all(_unsat(child, depth + 1) for child in canonical.children)
    if isinstance(canonical, And):
        return _conjunction_unsat(canonical.children, depth)
    return False


def prove_unsat(condition: Condition) -> bool:
    """True only when ``condition`` is unsatisfiable over every domain."""
    return _unsat(canonicalize(condition), 0)


def prove_valid(condition: Condition) -> bool:
    """True only when ``condition`` holds under every assignment."""
    return _unsat(canonicalize(condition.negate()), 0)


def abstract_sat(condition: Condition) -> AbstractResult:
    """Classify a condition: proven UNSAT, proven VALID, else UNKNOWN."""
    if prove_unsat(condition):
        return AbstractResult.UNSAT
    if prove_valid(condition):
        return AbstractResult.VALID
    return AbstractResult.UNKNOWN
