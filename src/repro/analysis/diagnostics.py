"""Typed diagnostics: stable codes, severities, and source spans.

Every finding of the static analysis engine is a :class:`Diagnostic`
carrying a **stable code** (``F001``, ``F002``, ...) from the registry
below, a :class:`~repro.analysis.diagnostics.Severity`, a human message,
and — when the program was parsed from text — the :class:`Span` of the
offending construct.  Codes are append-only: a code's meaning never
changes across releases, so ``--select``/``--ignore`` lists and CI
gates stay stable.  docs/ANALYSIS.md documents each code with an
example trigger and the recommended fix.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..ctable.parse import Span

__all__ = [
    "Severity",
    "Diagnostic",
    "CodeInfo",
    "CODES",
    "code_info",
    "filter_diagnostics",
    "render_text",
    "render_json",
    "render_sarif",
]


class Severity(enum.Enum):
    """How bad a finding is; ordering is by badness."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:
        return self.value

    @property
    def rank(self) -> int:
        return {"info": 0, "warning": 1, "error": 2}[self.value]


@dataclass(frozen=True)
class CodeInfo:
    """Registry entry for one diagnostic code."""

    code: str
    default_severity: Severity
    title: str


#: The stable code registry.  Append-only — never renumber.
CODES: Dict[str, CodeInfo] = {
    info.code: info
    for info in (
        CodeInfo("F001", Severity.ERROR, "unsafe rule: head variable not range-restricted"),
        CodeInfo("F002", Severity.ERROR, "unsafe rule: variable occurs only under negation"),
        CodeInfo("F003", Severity.ERROR, "unsafe rule: comparison variable unbound"),
        CodeInfo("F004", Severity.ERROR, "predicate used with inconsistent arities"),
        CodeInfo("F005", Severity.ERROR, "undefined predicate"),
        CodeInfo("F006", Severity.ERROR, "unstratifiable: negation inside a recursive cycle"),
        CodeInfo("F007", Severity.WARNING, "singleton variable"),
        CodeInfo("F008", Severity.WARNING, "duplicate rule (up to condition equivalence)"),
        CodeInfo("F009", Severity.WARNING, "predicate unreachable from any output"),
        CodeInfo("F010", Severity.WARNING, "condition atom is a tautology"),
        CodeInfo("F011", Severity.WARNING, "rule conditions are contradictory: rule can never fire"),
        CodeInfo("F012", Severity.WARNING, "comparison mixes c-domain sorts"),
        CodeInfo("F013", Severity.WARNING, "order comparison over non-numeric sort"),
        CodeInfo("F014", Severity.WARNING, "rule joins relations with no shared variables (cross product)"),
        CodeInfo("F015", Severity.INFO, "static cost estimate"),
        CodeInfo("F016", Severity.WARNING, "rule unreachable under the declared domains"),
        CodeInfo("F017", Severity.WARNING, "vacuous condition: conjunct holds in every world"),
        CodeInfo("F018", Severity.INFO, "domain narrowed by static analysis"),
        CodeInfo("F019", Severity.INFO, "rule sliced: irrelevant to the requested query"),
        CodeInfo("F020", Severity.INFO, "widening applied during the dataflow fixpoint"),
    )
}


def code_info(code: str) -> CodeInfo:
    """Registry lookup; raises ``KeyError`` for unknown codes."""
    return CODES[code]


@dataclass(frozen=True)
class Diagnostic:
    """One analysis finding."""

    code: str
    message: str
    severity: Severity = field(default=Severity.WARNING)
    span: Optional[Span] = None
    rule: Optional[str] = None
    file: Optional[str] = None

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @classmethod
    def make(
        cls,
        code: str,
        message: str,
        span: Optional[Span] = None,
        rule: Optional[str] = None,
        severity: Optional[Severity] = None,
        file: Optional[str] = None,
    ) -> "Diagnostic":
        """Build a diagnostic with the code's registered default severity."""
        if code not in CODES:
            raise ValueError(f"unknown diagnostic code {code!r}")
        return cls(
            code=code,
            message=message,
            severity=severity if severity is not None else CODES[code].default_severity,
            span=span,
            rule=rule,
            file=file,
        )

    @property
    def location(self) -> str:
        """``file:line:col`` (pieces omitted when unknown)."""
        parts = []
        if self.file:
            parts.append(self.file)
        if self.span is not None:
            parts.append(f"{self.span.line}:{self.span.col}")
        else:
            parts.append("-")
        return ":".join(parts)

    def __str__(self) -> str:
        where = f" [{self.rule}]" if self.rule else ""
        return f"{self.location}: {self.code} {self.severity}{where}: {self.message}"

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
        }
        if self.file:
            out["file"] = self.file
        if self.rule:
            out["rule"] = self.rule
        if self.span is not None:
            out["line"] = self.span.line
            out["col"] = self.span.col
            out["end_line"] = self.span.end_line
            out["end_col"] = self.span.end_col
        return out


def _normalize_codes(codes: Optional[Iterable[str]]) -> Optional[List[str]]:
    if codes is None:
        return None
    out: List[str] = []
    for chunk in codes:
        out.extend(c.strip() for c in chunk.split(",") if c.strip())
    for code in out:
        if code not in CODES:
            raise ValueError(f"unknown diagnostic code {code!r}")
    return out


def filter_diagnostics(
    diagnostics: Sequence[Diagnostic],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Diagnostic]:
    """Keep only selected codes, then drop ignored ones.

    Both arguments accept iterables of codes; elements may themselves be
    comma-separated lists (CLI convenience).  Unknown codes raise
    ``ValueError`` so typos fail loudly rather than silently selecting
    nothing.
    """
    selected = _normalize_codes(select)
    ignored = set(_normalize_codes(ignore) or ())
    out = []
    for diag in diagnostics:
        if selected is not None and diag.code not in selected:
            continue
        if diag.code in ignored:
            continue
        out.append(diag)
    return out


def render_text(diagnostics: Sequence[Diagnostic]) -> str:
    """One finding per line, followed by a severity tally."""
    lines = [str(d) for d in diagnostics]
    errors = sum(1 for d in diagnostics if d.severity is Severity.ERROR)
    warnings = sum(1 for d in diagnostics if d.severity is Severity.WARNING)
    lines.append(
        f"{len(diagnostics)} finding(s): {errors} error(s), {warnings} warning(s)"
    )
    return "\n".join(lines)


def render_json(diagnostics: Sequence[Diagnostic]) -> str:
    """The findings as a JSON array (stable key order)."""
    return json.dumps([d.to_dict() for d in diagnostics], indent=2, sort_keys=True)


_SARIF_LEVEL = {"info": "note", "warning": "warning", "error": "error"}


def render_sarif(diagnostics: Sequence[Diagnostic], tool_version: str = "0.1.0") -> str:
    """The findings as a SARIF 2.1.0 log (for CI annotation surfaces).

    Every code the run *could* emit is listed under ``rules`` so viewers
    can show titles for clean runs too; results reference rules by id.
    Spans map to one-based ``startLine``/``startColumn`` with the
    half-open end column SARIF expects (exclusive ``endColumn``).
    """
    rules = [
        {
            "id": info.code,
            "shortDescription": {"text": info.title},
            "defaultConfiguration": {
                "level": _SARIF_LEVEL[str(info.default_severity)]
            },
        }
        for info in CODES.values()
    ]
    results: List[Dict[str, object]] = []
    for diag in diagnostics:
        result: Dict[str, object] = {
            "ruleId": diag.code,
            "level": _SARIF_LEVEL[str(diag.severity)],
            "message": {"text": diag.message},
        }
        location: Dict[str, object] = {}
        if diag.file:
            location["artifactLocation"] = {"uri": diag.file}
        if diag.span is not None:
            location["region"] = {
                "startLine": diag.span.line,
                "startColumn": diag.span.col,
                "endLine": diag.span.end_line,
                "endColumn": diag.span.end_col,
            }
        if location:
            result["locations"] = [{"physicalLocation": location}]
        if diag.rule:
            result["properties"] = {"rule": diag.rule}
        results.append(result)
    log = {
        "version": "2.1.0",
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://github.com/faure-repro/repro",
                        "version": tool_version,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)
