"""Static cardinality and cost estimation.

Two consumers share one tiny System-R-style model:

* ``EXPLAIN`` (:mod:`repro.engine.explain`) — estimated row counts for
  computed plan nodes, so plans read like a database's would instead of
  showing ``?`` everywhere;
* the lint pipeline — per-rule join cost estimates (``F015``) and the
  cross-product detector's cost rationale.

The selectivity constants are the classic folklore defaults (equality
1/10, inequality 1/3, equijoin ``|L||R|/max``); with no table statistics
beyond live row counts they are order-of-magnitude tools, which is all
a lint gate needs.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

from ..ctable.table import Database
from ..engine.algebra import (
    AntiJoin,
    ConditionSelection,
    Distinct,
    Join,
    PlanNode,
    Product,
    Projection,
    Rename,
    Scan,
    Selection,
    Union,
)
from ..faurelog.ast import Literal, Program, Rule

__all__ = [
    "EQUALITY_SELECTIVITY",
    "INEQUALITY_SELECTIVITY",
    "DEFAULT_RELATION_SIZE",
    "estimate_rows",
    "estimate_rule_cost",
]

EQUALITY_SELECTIVITY = 0.1
INEQUALITY_SELECTIVITY = 1 / 3
CONDITION_SELECTIVITY = 0.5
ANTIJOIN_SELECTIVITY = 0.5

#: Assumed size of a relation with no statistics (lint-time estimates).
DEFAULT_RELATION_SIZE = 1000


def estimate_rows(node: PlanNode, db: Database) -> Optional[float]:
    """Estimated output rows of a plan node, or ``None`` with no basis.

    Stored tables contribute exact counts; everything above them flows
    through the selectivity model.  ``None`` propagates upward — an
    estimate is only produced when every leaf has one.
    """
    if isinstance(node, Scan):
        return float(len(db.table(node.table_name))) if node.table_name in db else None
    if isinstance(node, Selection):
        child = estimate_rows(node.child, db)
        if child is None:
            return None
        sel = 1.0
        for pred in node.predicates:
            sel *= EQUALITY_SELECTIVITY if pred.op == "=" else INEQUALITY_SELECTIVITY
        return child * sel
    if isinstance(node, ConditionSelection):
        child = estimate_rows(node.child, db)
        return None if child is None else child * CONDITION_SELECTIVITY
    if isinstance(node, (Projection, Rename)):
        return estimate_rows(node.child, db)
    if isinstance(node, Distinct):
        return estimate_rows(node.child, db)
    if isinstance(node, Join):
        left = estimate_rows(node.left, db)
        right = estimate_rows(node.right, db)
        if left is None or right is None:
            return None
        if not node.on:
            return left * right
        return left * right / max(left, right, 1.0)
    if isinstance(node, AntiJoin):
        left = estimate_rows(node.left, db)
        return None if left is None else left * ANTIJOIN_SELECTIVITY
    if isinstance(node, Product):
        left = estimate_rows(node.left, db)
        right = estimate_rows(node.right, db)
        if left is None or right is None:
            return None
        return left * right
    if isinstance(node, Union):
        total = 0.0
        for child in node.children:
            est = estimate_rows(child, db)
            if est is None:
                return None
            total += est
        return total
    return None


def _shares_terms(a: Literal, b: Literal) -> bool:
    terms_a = set(a.atom.variables()) | set(a.atom.cvariables())
    terms_b = set(b.atom.variables()) | set(b.atom.cvariables())
    return bool(terms_a & terms_b)


def estimate_rule_cost(
    rule: Rule,
    sizes: Optional[Mapping[str, int]] = None,
) -> float:
    """Worst-case intermediate cardinality of evaluating one rule.

    Joins the positive literals left to right: a literal sharing a
    variable with the partial join contributes an equijoin
    (``|acc||R|/max``); an unconnected one contributes a full cross
    product.  ``sizes`` maps predicate names to row counts; missing
    predicates assume :data:`DEFAULT_RELATION_SIZE`.
    """
    sizes = sizes or {}
    positives = list(rule.positive_literals())
    if not positives:
        return 1.0

    def size_of(lit: Literal) -> float:
        return float(sizes.get(lit.predicate, DEFAULT_RELATION_SIZE))

    acc = size_of(positives[0])
    joined = [positives[0]]
    for lit in positives[1:]:
        right = size_of(lit)
        if any(_shares_terms(lit, prev) for prev in joined):
            acc = acc * right / max(acc, right, 1.0)
        else:
            acc = acc * right
        joined.append(lit)
    # Comparisons filter the joined intermediate.
    for _ in rule.comparisons():
        acc *= INEQUALITY_SELECTIVITY
    return acc
