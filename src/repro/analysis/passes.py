"""The analysis passes.

Each pass is a function ``(AnalysisContext) -> Iterable[Diagnostic]``
over a parsed (possibly *relaxed*: unsafe / arity-inconsistent)
program.  Passes are pure — they share the context's caches but never
mutate the program — so the manager can run them in any order; the
default order in :mod:`repro.analysis.manager` goes cheap-and-fatal
first (safety, arities) and estimate-grade last (costs), mirroring the
lattice-framework habit of running coarse abstract domains before
precise ones.

No pass ever calls the condition solver.  Contradiction and tautology
detection go through the sound abstract domain of
:mod:`repro.analysis.abstract`, so the whole pipeline runs in low
polynomial time even on programs whose conditions would choke Z3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

import networkx as nx

from ..ctable.condition import (
    Condition,
    FalseCond,
    TrueCond,
    conjoin,
)
from ..ctable.parse import Span
from ..ctable.terms import Constant, CVariable, Variable
from ..faurelog.ast import Literal, Program, Rule
from ..faurelog.stratify import dependency_graph
from ..solver.canonical import canonicalize
from .abstract import prove_unsat, prove_valid
from .cost import DEFAULT_RELATION_SIZE, estimate_rule_cost
from .diagnostics import Diagnostic
from .sorts import ORDERED_SORTS, SortInference, infer_sorts

__all__ = [
    "AnalysisContext",
    "AnalysisPass",
    "safety_pass",
    "arity_pass",
    "undefined_predicate_pass",
    "stratification_pass",
    "singleton_variable_pass",
    "duplicate_rule_pass",
    "condition_pass",
    "sort_pass",
    "reachability_pass",
    "cross_product_pass",
    "cost_pass",
]


@dataclass
class AnalysisContext:
    """Shared state for one analysis run."""

    program: Program
    edb: FrozenSet[str] = frozenset()
    outputs: FrozenSet[str] = frozenset()
    file: Optional[str] = None
    #: Optional relation row counts for the cost pass.
    sizes: Dict[str, int] = field(default_factory=dict)
    _sort_inference: Optional[SortInference] = None
    _graph: Optional["nx.DiGraph"] = None

    @property
    def sort_inference(self) -> SortInference:
        if self._sort_inference is None:
            self._sort_inference = infer_sorts(self.program)
        return self._sort_inference

    @property
    def graph(self) -> "nx.DiGraph":
        if self._graph is None:
            self._graph = dependency_graph(self.program)
        return self._graph

    def diag(
        self,
        code: str,
        message: str,
        span: Optional[Span] = None,
        rule: Optional[Rule] = None,
    ) -> Diagnostic:
        return Diagnostic.make(
            code,
            message,
            span=span if span is not None else (rule.span if rule else None),
            rule=rule_name(rule) if rule is not None else None,
            file=self.file,
        )


#: The pass signature.
AnalysisPass = Callable[[AnalysisContext], Iterable[Diagnostic]]


def rule_name(rule: Rule) -> str:
    return rule.label or str(rule.head)


def _rule_condition(rule: Rule) -> Condition:
    """The static part of the rule's derived condition (eq. 3): explicit
    comparisons plus annotation filters.  Matched tuple conditions are
    runtime data and cannot be folded in statically."""
    parts: List[Condition] = list(rule.comparisons())
    parts.extend(lit.annotation for lit in rule.literals())
    return conjoin(parts)


# -- safety / range restriction (F001-F003) ---------------------------------


def safety_pass(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    codes = {"head": "F001", "negation": "F002", "comparison": "F003"}
    messages = {
        "head": "head variable {v} is not bound by any positive body atom",
        "negation": "variable {v} occurs only under negation",
        "comparison": "comparison variable {v} is not bound by any positive body atom",
    }
    for rule in ctx.program:
        for kind, term, span in rule.safety_violations():
            yield ctx.diag(
                codes[kind],
                messages[kind].format(v=term),
                span=span if span is not None else rule.span,
                rule=rule,
            )


# -- arity consistency (F004) ------------------------------------------------


def arity_pass(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    for atom, expected in ctx.program.arity_clashes():
        yield ctx.diag(
            "F004",
            f"predicate {atom.predicate} used with arity {atom.arity}, "
            f"but first use has arity {expected}",
            span=atom.span,
        )


# -- undefined predicates (F005) ---------------------------------------------


def undefined_predicate_pass(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """Only meaningful when stored relations were declared — without an
    EDB declaration every unknown predicate might be a stored c-table."""
    if not ctx.edb:
        return
    idb = ctx.program.idb_predicates()
    for rule in ctx.program:
        for lit in rule.literals():
            pred = lit.predicate
            if pred not in idb and pred not in ctx.edb:
                yield ctx.diag(
                    "F005",
                    f"predicate {pred} is neither defined nor a declared relation",
                    span=lit.span,
                    rule=rule,
                )


# -- stratification (F006) ---------------------------------------------------


def _negative_edge_witness(
    graph: "nx.DiGraph", source: str, target: str
) -> List[str]:
    """A cycle witnessing the negative edge ``source -> target``.

    Returns predicates in order ``[source, target, ..., source]``: the
    negated dependency followed by the positive path closing the loop.
    """
    try:
        back = nx.shortest_path(graph, target, source)
    except nx.NetworkXNoPath:  # pragma: no cover - caller checks the SCC
        return [source, target]
    return [source] + list(back)


def stratification_pass(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    graph = ctx.graph
    component_of: Dict[str, int] = {}
    for i, scc in enumerate(nx.strongly_connected_components(graph)):
        for pred in scc:
            component_of[pred] = i
    for u, v, data in graph.edges(data=True):
        if not data.get("negative") or component_of[u] != component_of[v]:
            continue
        cycle = _negative_edge_witness(graph, u, v)
        witness = " -> ".join(cycle)
        # Locate the offending negated literal for the span.
        span: Optional[Span] = None
        offender: Optional[Rule] = None
        for rule in ctx.program:
            if rule.head.predicate != v:
                continue
            for lit in rule.negative_literals():
                if lit.predicate == u:
                    span, offender = lit.span, rule
                    break
            if offender is not None:
                break
        yield ctx.diag(
            "F006",
            f"program is not stratifiable: negation of {u} occurs in a "
            f"recursive cycle (witness: {witness}, where {u} -> {v} is negated)",
            span=span,
            rule=offender,
        )


# -- singleton variables (F007) ----------------------------------------------


def _variable_occurrences(rule: Rule) -> Dict[Variable, int]:
    counts: Dict[Variable, int] = {}

    def bump(term: object) -> None:
        if isinstance(term, Variable):
            counts[term] = counts.get(term, 0) + 1

    for atom in [rule.head] + [lit.atom for lit in rule.literals()]:
        for term in atom.terms:
            bump(term)
    conditions = list(rule.comparisons()) + [l.annotation for l in rule.literals()]
    for cond in conditions:
        for atom in cond.atoms():
            bump(getattr(atom, "lhs", None))
            bump(getattr(atom, "rhs", None))
    return counts


def singleton_variable_pass(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    for rule in ctx.program:
        for var, n in _variable_occurrences(rule).items():
            if n == 1:
                yield ctx.diag(
                    "F007",
                    f"variable {var} occurs only once (matches anything)",
                    rule=rule,
                )


# -- duplicate rules (F008) --------------------------------------------------


def _duplicate_key(rule: Rule) -> Tuple:
    """A key equal for rules that differ only in body order, condition
    atom order, or double negation — via the canonical condition form."""
    literal_keys = sorted(
        (
            lit.atom.predicate,
            tuple(repr(t) for t in lit.atom.terms),
            lit.negated,
            repr(canonicalize(lit.annotation)),
        )
        for lit in rule.literals()
    )
    comparisons = canonicalize(conjoin(rule.comparisons()))
    return (rule.head, tuple(literal_keys), repr(comparisons))


def duplicate_rule_pass(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    seen: Dict[Tuple, Rule] = {}
    for rule in ctx.program:
        key = _duplicate_key(rule)
        first = seen.get(key)
        if first is not None:
            yield ctx.diag(
                "F008",
                f"rule duplicates {rule_name(first)} "
                "(conditions compared up to canonical equivalence)",
                rule=rule,
            )
        else:
            seen[key] = rule


# -- contradiction / tautology via the abstract domain (F010, F011) ----------


def condition_pass(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """Solver-free vacuity checks.

    *Per rule*: the conjunction of all explicit comparisons and
    annotation filters proven UNSAT means the derived condition of
    every tuple is UNSAT — the rule can never fire (``F011``).

    *Per atom*: a comparison proven VALID adds nothing to the derived
    condition (``F010``).

    Both proofs come from :mod:`repro.analysis.abstract`, which is
    sound (no false positives) by construction — see the differential
    test against :class:`~repro.solver.interface.ConditionSolver`.
    """
    for rule in ctx.program:
        static_condition = _rule_condition(rule)
        if prove_unsat(static_condition):
            yield ctx.diag(
                "F011",
                "rule conditions are contradictory: rule can never fire",
                rule=rule,
            )
            continue  # per-atom reports would be noise below a dead rule
        for i, item in enumerate(rule.body):
            if not isinstance(item, Condition):
                continue
            span = rule.body_spans[i] or rule.span
            if isinstance(item, TrueCond) or (
                not isinstance(item, FalseCond) and prove_valid(item)
            ):
                yield ctx.diag(
                    "F010",
                    f"comparison is always true (tautology): {item}",
                    span=span,
                    rule=rule,
                )


# -- sort checking (F012, F013) ----------------------------------------------


def sort_pass(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    inference = ctx.sort_inference
    for rule_index, rule in enumerate(ctx.program):
        for i, item in enumerate(rule.body):
            conditions: List[Tuple[Condition, Optional[Span]]] = []
            if isinstance(item, Condition):
                conditions.append((item, rule.body_spans[i]))
            elif isinstance(item, Literal) and not isinstance(
                item.annotation, TrueCond
            ):
                conditions.append((item.annotation, item.span))
            for cond, span in conditions:
                for atom in cond.atoms():
                    lhs = getattr(atom, "lhs", None)
                    rhs = getattr(atom, "rhs", None)
                    if lhs is None or rhs is None:
                        continue
                    sorts_l = inference.sorts_of_term(lhs, rule_index)
                    sorts_r = inference.sorts_of_term(rhs, rule_index)
                    if sorts_l and sorts_r and not (sorts_l & sorts_r):
                        yield ctx.diag(
                            "F012",
                            f"comparison {atom} mixes c-domain sorts: "
                            f"{lhs} is {_fmt_sorts(sorts_l)} but {rhs} is "
                            f"{_fmt_sorts(sorts_r)}",
                            span=span,
                            rule=rule,
                        )
                    elif atom.op in ("<", "<=", ">", ">="):
                        evidence = sorts_l | sorts_r
                        if evidence and not (evidence & ORDERED_SORTS):
                            yield ctx.diag(
                                "F013",
                                f"order comparison {atom} over non-numeric "
                                f"sort {_fmt_sorts(evidence)} "
                                "(strings order lexicographically)",
                                span=span,
                                rule=rule,
                            )


def _fmt_sorts(sorts: Iterable[str]) -> str:
    return "/".join(sorted(sorts))


# -- output reachability (F009) ----------------------------------------------


def reachability_pass(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """Rules whose head cannot reach any output predicate are dead code.

    Outputs default to the *sinks*: IDB predicates no rule consumes.
    """
    program = ctx.program
    idb = program.idb_predicates()
    graph = ctx.graph
    consumed: Set[str] = set()
    for rule in program:
        consumed |= rule.body_predicates()
    sinks = set(ctx.outputs) or (idb - consumed)
    reachable: Set[str] = set()
    frontier = list(sinks)
    while frontier:
        pred = frontier.pop()
        if pred in reachable:
            continue
        reachable.add(pred)
        for src, _dst in graph.in_edges(pred):
            frontier.append(src)
    for pred in sorted(idb - reachable):
        rules = program.rules_for(pred)
        span = rules[0].head.span if rules else None
        yield ctx.diag(
            "F009",
            f"predicate {pred} is never used by any output "
            "(its rules are dead code)",
            span=span,
            rule=rules[0] if rules else None,
        )


# -- cross products and cost estimates (F014, F015) --------------------------


def _join_components(rule: Rule) -> List[List[Literal]]:
    """Connected components of the positive literals under shared
    variables (constant-only and 0-ary literals are filters, not joins)."""
    positives = [
        lit
        for lit in rule.positive_literals()
        if lit.atom.variables() or lit.atom.cvariables()
    ]
    parent = list(range(len(positives)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        parent[find(i)] = find(j)

    owner: Dict[object, int] = {}
    for i, lit in enumerate(positives):
        for term in set(lit.atom.variables()) | set(lit.atom.cvariables()):
            if term in owner:
                union(i, owner[term])
            else:
                owner[term] = i
    # Comparisons chaining variables across literals also connect them.
    for cond in rule.comparisons():
        touched = [
            owner[t]
            for atom in cond.atoms()
            for t in (getattr(atom, "lhs", None), getattr(atom, "rhs", None))
            if t in owner
        ]
        for i, j in zip(touched, touched[1:]):
            union(i, j)
    components: Dict[int, List[Literal]] = {}
    for i, lit in enumerate(positives):
        components.setdefault(find(i), []).append(lit)
    return list(components.values())


def cross_product_pass(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    for rule in ctx.program:
        components = _join_components(rule)
        if len(components) > 1:
            names = ", ".join(
                "{" + ", ".join(lit.predicate for lit in comp) + "}"
                for comp in components
            )
            yield ctx.diag(
                "F014",
                f"rule joins {len(components)} variable-disjoint literal "
                f"groups ({names}): the join degenerates to a cross product",
                rule=rule,
            )


def cost_pass(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """Advisory cost estimates for rules that perform joins."""
    for rule in ctx.program:
        positives = list(rule.positive_literals())
        if len(positives) < 2:
            continue
        estimate = estimate_rule_cost(rule, ctx.sizes)
        assumed = "" if ctx.sizes else (
            f" (assuming {DEFAULT_RELATION_SIZE} rows per relation)"
        )
        yield ctx.diag(
            "F015",
            f"rule joins {len(positives)} relations; estimated intermediate "
            f"cardinality ~{estimate:.0f} rows{assumed}",
            rule=rule,
        )
