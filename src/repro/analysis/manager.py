"""The pass manager: ordered analyses, stable output, select/ignore.

:func:`analyze_program` is the one-call entry point used by the ``lint``
CLI, the legacy :func:`repro.faurelog.analyze.lint_program` shim, and
the CI program gate.  :func:`analyze_text` parses in *relaxed* mode
first so safety and arity problems become positioned diagnostics rather
than exceptions.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..faurelog.ast import Program
from ..faurelog.parser import parse_program
from .diagnostics import Diagnostic, Severity, filter_diagnostics
from .passes import (
    AnalysisContext,
    AnalysisPass,
    arity_pass,
    condition_pass,
    cost_pass,
    cross_product_pass,
    duplicate_rule_pass,
    reachability_pass,
    safety_pass,
    singleton_variable_pass,
    sort_pass,
    stratification_pass,
    undefined_predicate_pass,
)

__all__ = ["PassManager", "DEFAULT_PASSES", "analyze_program", "analyze_text"]

#: The default pipeline, cheap-and-fatal first.  Order is presentation
#: only — passes are independent — but a stable order keeps output and
#: tests deterministic.
DEFAULT_PASSES: Tuple[AnalysisPass, ...] = (
    safety_pass,
    arity_pass,
    undefined_predicate_pass,
    stratification_pass,
    singleton_variable_pass,
    duplicate_rule_pass,
    condition_pass,
    sort_pass,
    reachability_pass,
    cross_product_pass,
    cost_pass,
)


def _sort_key(diag: Diagnostic) -> Tuple:
    span = diag.span
    return (
        diag.file or "",
        span.line if span else 1 << 30,
        span.col if span else 1 << 30,
        diag.code,
        diag.message,
    )


class PassManager:
    """Runs an ordered set of analyses and post-processes the findings."""

    def __init__(self, passes: Optional[Sequence[AnalysisPass]] = None) -> None:
        self.passes: List[AnalysisPass] = list(
            passes if passes is not None else DEFAULT_PASSES
        )

    def run(
        self,
        program: Program,
        edb: Iterable[str] = (),
        outputs: Iterable[str] = (),
        file: Optional[str] = None,
        sizes: Optional[Dict[str, int]] = None,
    ) -> List[Diagnostic]:
        ctx = AnalysisContext(
            program=program,
            edb=frozenset(edb),
            outputs=frozenset(outputs),
            file=file,
            sizes=dict(sizes or {}),
        )
        findings: List[Diagnostic] = []
        for analysis in self.passes:
            findings.extend(analysis(ctx))
        findings.sort(key=_sort_key)
        return findings


def analyze_program(
    program: Program,
    edb: Iterable[str] = (),
    outputs: Iterable[str] = (),
    file: Optional[str] = None,
    sizes: Optional[Dict[str, int]] = None,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Diagnostic]:
    """Run the default pipeline over an already-parsed program."""
    findings = PassManager().run(
        program, edb=edb, outputs=outputs, file=file, sizes=sizes
    )
    return filter_diagnostics(findings, select=select, ignore=ignore)


def analyze_text(
    text: str,
    edb: Iterable[str] = (),
    outputs: Iterable[str] = (),
    file: Optional[str] = None,
    sizes: Optional[Dict[str, int]] = None,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Diagnostic]:
    """Parse (relaxed) and analyze program text.

    Safety and arity problems surface as F001–F004 diagnostics with
    source spans instead of :class:`~repro.faurelog.ast.ProgramError`.
    Syntax errors still raise :class:`~repro.ctable.parse.ParseError`
    (there is no program to analyze without a parse tree).
    """
    program = parse_program(text, check_safety=False, check_arities=False)
    return analyze_program(
        program,
        edb=edb,
        outputs=outputs,
        file=file,
        sizes=sizes,
        select=select,
        ignore=ignore,
    )
