"""Static analysis of fauré-log programs.

The paper leans on "static analysis readily available in pure datalog";
this package is the reproduction's pass framework for it: a manager
(:mod:`~repro.analysis.manager`) runs ordered analyses
(:mod:`~repro.analysis.passes`) over a parsed program and emits typed
:class:`~repro.analysis.diagnostics.Diagnostic` findings with stable
``F0xx`` codes, severities, and source spans.  Condition vacuity is
decided by a sound, solver-free abstract domain
(:mod:`~repro.analysis.abstract`); c-domain sorts are inferred by
:mod:`~repro.analysis.sorts`; cardinalities estimated by
:mod:`~repro.analysis.cost`.

The whole-program half lives in :mod:`~repro.analysis.dataflow` (the
abstract interpreter over the rule dependency graph) and
:mod:`~repro.analysis.optimize` (the ``--optimize`` pass deriving domain
narrowing, query-driven relevance slicing, and static condition
classification from it).

See docs/ANALYSIS.md for the code catalog and the soundness argument.
"""

from .abstract import AbstractResult, abstract_sat, prove_unsat, prove_valid
from .dataflow import (
    AbstractValue,
    DataflowResult,
    NarrowingResult,
    analyze,
    narrow_domains,
)
from .diagnostics import (
    CODES,
    CodeInfo,
    Diagnostic,
    Severity,
    filter_diagnostics,
    render_json,
    render_sarif,
    render_text,
)
from .manager import DEFAULT_PASSES, PassManager, analyze_program, analyze_text
from .optimize import (
    ConditionPrecheck,
    OptimizationResult,
    optimize_program,
    sequence_transforms_allowed,
)

__all__ = [
    "AbstractResult",
    "abstract_sat",
    "prove_unsat",
    "prove_valid",
    "AbstractValue",
    "DataflowResult",
    "NarrowingResult",
    "analyze",
    "narrow_domains",
    "CODES",
    "CodeInfo",
    "Diagnostic",
    "Severity",
    "filter_diagnostics",
    "render_json",
    "render_sarif",
    "render_text",
    "DEFAULT_PASSES",
    "PassManager",
    "analyze_program",
    "analyze_text",
    "ConditionPrecheck",
    "OptimizationResult",
    "optimize_program",
    "sequence_transforms_allowed",
]
