"""Whole-program abstract interpretation over the rule dependency graph.

PR 7 proved the interval/atom abstract domain can semi-decide most
hot-path conditions *at solve time*; this module runs the same style of
sound over-approximation *statically over the whole program*.  For every
predicate argument it computes an :class:`AbstractValue` — an element of
the lattice

    ⊥  ⊑  finite set  ⊑  interval  ⊑  ⊤

— by a fixpoint over the strata of the rule dependency graph, seeded
from the stored c-tables and the declared c-variable domains, with
widening at recursion so termination never depends on the data.

Two derived analyses feed :mod:`repro.analysis.optimize`:

* :func:`analyze` — per-argument value facts plus the set of rules whose
  bodies provably can never match (the F016 "unreachable under domains"
  family);
* :func:`narrow_domains` — a sound per-c-variable domain narrowing based
  on *distinguishability*: when a c-variable is only ever constrained by
  single-variable atoms against constants, its declared values partition
  into equivalence classes with identical satisfaction vectors, and one
  representative per class suffices to preserve every SAT / validity /
  entailment verdict the solver will ever be asked for (the narrowed
  :class:`~repro.solver.domains.FiniteDomain` is what the evaluator's
  solver then enumerates over).

Soundness is one-sided everywhere, exactly as in
:mod:`repro.analysis.abstract`: the abstraction may say "don't know"
(⊤, no narrowing, rule kept), never the reverse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

from ..ctable.condition import Comparison, Condition, LinearAtom, TRUE
from ..ctable.table import Database
from ..ctable.terms import Constant, CVariable, Term, Variable
from ..faurelog.ast import Program, Rule
from ..solver.domains import Domain, DomainMap, FiniteDomain

__all__ = [
    "AbstractValue",
    "TOP",
    "BOTTOM",
    "DataflowResult",
    "NarrowingResult",
    "analyze",
    "narrow_domains",
    "rule_environment",
]

#: Finite sets larger than this are widened to an interval (numeric) or ⊤.
SET_WIDENING_LIMIT = 32

#: Joins observed at one (predicate, argument) slot before widening kicks in.
WIDEN_AFTER = 3

#: Declared domains larger than this are not scanned for narrowing.
NARROWING_SCAN_LIMIT = 4096


@dataclass(frozen=True)
class AbstractValue:
    """One lattice element: ⊥ / finite value set / numeric interval / ⊤.

    ``values`` carries raw payloads when the element is a finite set
    (``frozenset()`` is ⊥); ``lo``/``hi`` carry a closed numeric
    interval (either bound ``None`` = unbounded on that side) when
    ``values`` is ``None``; ``top`` subsumes everything.
    """

    top: bool = False
    values: Optional[FrozenSet[object]] = None
    lo: Optional[float] = None
    hi: Optional[float] = None

    @property
    def is_bottom(self) -> bool:
        return not self.top and self.values is not None and not self.values

    @property
    def is_interval(self) -> bool:
        return not self.top and self.values is None

    def contains(self, value: object) -> bool:
        """May this argument take ``value``?  (⊤ admits everything.)"""
        if self.top:
            return True
        if self.values is not None:
            try:
                return value in self.values
            except TypeError:
                return any(value == v for v in self.values)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return False
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True

    def join(self, other: "AbstractValue") -> "AbstractValue":
        """Least upper bound (with eager set-size widening)."""
        if self.top or other.top:
            return TOP
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        if self.values is not None and other.values is not None:
            merged = self.values | other.values
            if len(merged) <= SET_WIDENING_LIMIT:
                return AbstractValue(values=merged)
            return _set_to_interval(merged)
        left = self if self.is_interval else _set_to_interval(self.values or frozenset())
        right = other if other.is_interval else _set_to_interval(other.values or frozenset())
        if left.top or right.top:
            return TOP
        lo = None if left.lo is None or right.lo is None else min(left.lo, right.lo)
        hi = None if left.hi is None or right.hi is None else max(left.hi, right.hi)
        return AbstractValue(values=None, lo=lo, hi=hi)

    def meet(self, other: "AbstractValue") -> "AbstractValue":
        """Greatest lower bound — sound intersection of over-approximations."""
        if self.top:
            return other
        if other.top:
            return self
        if self.values is not None and other.values is not None:
            return AbstractValue(values=frozenset(v for v in self.values if other.contains(v)))
        if self.values is not None:
            return AbstractValue(values=frozenset(v for v in self.values if other.contains(v)))
        if other.values is not None:
            return AbstractValue(values=frozenset(v for v in other.values if self.contains(v)))
        lo = self.lo if other.lo is None else (other.lo if self.lo is None else max(self.lo, other.lo))
        hi = self.hi if other.hi is None else (other.hi if self.hi is None else min(self.hi, other.hi))
        if lo is not None and hi is not None and lo > hi:
            return BOTTOM
        return AbstractValue(values=None, lo=lo, hi=hi)

    def widen(self, newer: "AbstractValue") -> "AbstractValue":
        """Classic widening: any unstable bound jumps to its extreme."""
        joined = self.join(newer)
        if joined == self:
            return self
        if joined.top:
            return TOP
        if joined.values is not None:
            # An unstable finite set widens to the interval hull (numeric)
            # or ⊤ — never grows one value at a time forever.
            if self.is_bottom:
                return joined
            return _set_to_interval(joined.values)
        lo = joined.lo if self.lo is not None and joined.lo == self.lo else None
        hi = joined.hi if self.hi is not None and joined.hi == self.hi else None
        if self.values is not None:  # set → interval transition: keep the hull once
            lo, hi = joined.lo, joined.hi
        return AbstractValue(values=None, lo=lo, hi=hi)

    def size(self) -> Optional[int]:
        """Cardinality when finite, else ``None``."""
        if self.values is not None:
            return len(self.values)
        return None

    def describe(self) -> str:
        if self.top:
            return "⊤"
        if self.values is not None:
            if not self.values:
                return "⊥"
            try:
                shown = sorted(self.values, key=repr)
            except TypeError:  # pragma: no cover - exotic payloads
                shown = list(self.values)
            return "{" + ", ".join(repr(v) for v in shown[:8]) + (", …}" if len(shown) > 8 else "}")
        lo = "-∞" if self.lo is None else repr(self.lo)
        hi = "+∞" if self.hi is None else repr(self.hi)
        return f"[{lo}, {hi}]"


#: The no-information element (every value possible).
TOP = AbstractValue(top=True)

#: The unreachable element (no value possible).
BOTTOM = AbstractValue(values=frozenset())


def _set_to_interval(values: FrozenSet[object]) -> AbstractValue:
    """Hull of an oversized set: numeric interval, or ⊤ for mixed payloads."""
    if not values:
        return BOTTOM
    numerics: List[float] = []
    for v in values:
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            return TOP
        numerics.append(v)
    return AbstractValue(values=None, lo=min(numerics), hi=max(numerics))


def _from_domain(domain: Domain) -> AbstractValue:
    """Abstract every possible world value of a c-variable."""
    if not domain.is_finite:
        return TOP
    raw = tuple(domain.raw_values())
    if len(raw) <= SET_WIDENING_LIMIT:
        return AbstractValue(values=frozenset(raw))
    return _set_to_interval(frozenset(raw))


# ---------------------------------------------------------------------------
# Per-rule environments (the equality-class part of the lattice)
# ---------------------------------------------------------------------------

BindSym = Union[Variable, CVariable]


def _interval_for(op: str, bound: float) -> Optional[AbstractValue]:
    if op == "<":
        return AbstractValue(values=None, lo=None, hi=bound)  # sound: closed ⊇ open
    if op == "<=":
        return AbstractValue(values=None, lo=None, hi=bound)
    if op == ">":
        return AbstractValue(values=None, lo=bound, hi=None)
    if op == ">=":
        return AbstractValue(values=None, lo=bound, hi=None)
    return None


def rule_environment(
    rule: Rule,
    facts: Dict[Tuple[str, int], AbstractValue],
    domains: DomainMap,
) -> Optional[Dict[BindSym, AbstractValue]]:
    """Abstract bindings for one rule body, or ``None`` when unmatchable.

    Positive literals contribute the meet of their argument facts (a
    variable bound in several positions lands in the intersection);
    ``x = y`` comparisons merge equality classes; comparisons against
    constants refine with a singleton or interval.  ``None`` means some
    variable's abstraction is ⊥ or a constant falls outside its
    argument's abstraction — the body can never match, in any world.
    """
    env: Dict[BindSym, AbstractValue] = {}
    bindable = rule.bindable_cvariables()
    for literal in rule.positive_literals():
        pred = literal.predicate
        for index, term in enumerate(literal.atom.terms):
            fact = facts.get((pred, index), TOP)
            if isinstance(term, Constant):
                if not fact.contains(term.value):
                    return None
                continue
            if isinstance(term, Variable) or (isinstance(term, CVariable) and term in bindable):
                met = env.get(term, TOP).meet(fact)
                if met.is_bottom:
                    return None
                env[term] = met

    # Equality classes across comparisons, then constant refinements.
    classes: Dict[BindSym, Set[BindSym]] = {}

    def union(a: BindSym, b: BindSym) -> None:
        ca = classes.setdefault(a, {a})
        cb = classes.setdefault(b, {b})
        if ca is cb:
            return
        merged = ca | cb
        for member in merged:
            classes[member] = merged

    def refine(sym: BindSym, value: AbstractValue) -> bool:
        met = env.get(sym, TOP).meet(value)
        env[sym] = met
        return not met.is_bottom

    def sym_of(term: Term) -> Optional[BindSym]:
        if isinstance(term, Variable):
            return term
        if isinstance(term, CVariable):
            # A non-bindable c-variable is a global unknown ranging over
            # its declared domain — refine against that, soundly.
            if term not in env:
                env[term] = _from_domain(domains.domain_of(term))
            return term
        return None

    for comparison in rule.comparisons():
        for atom in comparison.atoms():
            if not isinstance(atom, Comparison):
                continue
            lhs, rhs = sym_of(atom.lhs), sym_of(atom.rhs)
            if atom.op == "=" and lhs is not None and rhs is not None:
                union(lhs, rhs)
            elif atom.op == "=" and lhs is not None and isinstance(atom.rhs, Constant):
                if not refine(lhs, AbstractValue(values=frozenset([atom.rhs.value]))):
                    return None
            elif atom.op == "=" and rhs is not None and isinstance(atom.lhs, Constant):
                if not refine(rhs, AbstractValue(values=frozenset([atom.lhs.value]))):
                    return None
            elif atom.op in ("<", "<=", ">", ">=") and lhs is not None and isinstance(atom.rhs, Constant):
                bound = atom.rhs.value
                if isinstance(bound, (int, float)) and not isinstance(bound, bool):
                    iv = _interval_for(atom.op, bound)
                    if iv is not None and not refine(lhs, iv):
                        return None

    # Propagate meets across each equality class.
    for members in {id(c): c for c in classes.values()}.values():
        met = TOP
        for member in members:
            met = met.meet(env.get(member, TOP))
        if met.is_bottom:
            return None
        for member in members:
            env[member] = met
    return env


# ---------------------------------------------------------------------------
# The whole-program fixpoint
# ---------------------------------------------------------------------------


@dataclass
class DataflowResult:
    """Per-argument abstract values plus fixpoint metadata."""

    #: (predicate, argument index) → abstract value.
    facts: Dict[Tuple[str, int], AbstractValue] = field(default_factory=dict)
    #: Rules whose bodies provably never match under the facts.
    unreachable: List[Rule] = field(default_factory=list)
    #: (predicate, argument index) slots where widening fired.
    widened: Set[Tuple[str, int]] = field(default_factory=set)
    #: Fixpoint rounds run (across all strata).
    iterations: int = 0

    def fact(self, predicate: str, index: int) -> AbstractValue:
        return self.facts.get((predicate, index), TOP)

    def describe(self, predicate: str) -> str:
        indexed = sorted(
            (i, v) for (p, i), v in self.facts.items() if p == predicate
        )
        return f"{predicate}(" + ", ".join(v.describe() for _, v in indexed) + ")"


def _seed_edb(database: Database, domains: DomainMap) -> Dict[Tuple[str, int], AbstractValue]:
    facts: Dict[Tuple[str, int], AbstractValue] = {}
    for table in database:
        for tup in table:
            for index, entry in enumerate(tup.values):
                key = (table.name, index)
                current = facts.get(key, BOTTOM)
                if isinstance(entry, CVariable):
                    # In some world the entry takes any of its domain values.
                    current = current.join(_from_domain(domains.domain_of(entry)))
                elif isinstance(entry, Constant):
                    current = current.join(AbstractValue(values=frozenset([entry.value])))
                else:  # pragma: no cover - program variables can't be stored
                    current = TOP
                facts[key] = current
        for index in range(table.arity):
            facts.setdefault((table.name, index), BOTTOM)
    return facts


def analyze(
    program: Program,
    database: Database,
    domains: DomainMap,
    widen_after: int = WIDEN_AFTER,
) -> DataflowResult:
    """Run the abstract interpreter to fixpoint over the strata.

    The resulting facts over-approximate, per predicate argument, every
    value that argument can hold in any possible world; ``unreachable``
    lists the rules whose bodies the facts prove unmatchable.
    """
    from ..faurelog.stratify import stratify

    result = DataflowResult(facts=_seed_edb(database, domains))
    facts = result.facts
    join_counts: Dict[Tuple[str, int], int] = {}

    def head_transfer(rule: Rule, env: Dict[BindSym, AbstractValue]) -> bool:
        changed = False
        pred = rule.head.predicate
        for index, term in enumerate(rule.head.terms):
            key = (pred, index)
            if isinstance(term, Constant):
                incoming = AbstractValue(values=frozenset([term.value]))
            elif isinstance(term, (Variable, CVariable)):
                incoming = env.get(term)
                if incoming is None and isinstance(term, CVariable):
                    incoming = _from_domain(domains.domain_of(term))
                if incoming is None:  # pragma: no cover - safety guarantees binding
                    incoming = TOP
            else:  # pragma: no cover - term universe is closed
                incoming = TOP
            current = facts.get(key, BOTTOM)
            join_counts[key] = join_counts.get(key, 0) + 1
            if join_counts[key] > widen_after:
                updated = current.widen(incoming)
                if updated != current and not current.is_bottom:
                    result.widened.add(key)
            else:
                updated = current.join(incoming)
            if updated != current:
                facts[key] = updated
                changed = True
        return changed

    for stratum in stratify(program):
        rules = [r for r in program if r.head.predicate in stratum]
        for rule in rules:
            for index in range(rule.head.arity):
                facts.setdefault((rule.head.predicate, index), BOTTOM)
        changed = True
        while changed:
            changed = False
            result.iterations += 1
            for rule in rules:
                env = rule_environment(rule, facts, domains)
                if env is None:
                    continue
                if head_transfer(rule, env):
                    changed = True

    # Unreachability is judged against the *final* facts (monotone: the
    # facts only grow, so a body unmatchable now was never matchable).
    for rule in program:
        if rule_environment(rule, facts, domains) is None:
            result.unreachable.append(rule)
    return result


# ---------------------------------------------------------------------------
# Sound domain narrowing
# ---------------------------------------------------------------------------


@dataclass
class NarrowingResult:
    """A narrowed :class:`DomainMap` plus the per-variable accounting."""

    domains: DomainMap
    #: variable name → (declared size, narrowed size).
    narrowed: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    @property
    def any(self) -> bool:
        return bool(self.narrowed)


def _profile_conditions(
    program: Program, database: Database
) -> Tuple[Dict[CVariable, List[Condition]], Set[CVariable]]:
    """Collect, per c-variable, the atoms that can ever constrain it.

    Returns ``(profile, disqualified)``.  A disqualified variable may be
    coupled to another variable (directly, or through a program variable
    that could bind to a data-part c-variable), so value
    interchangeability cannot be argued for it and it must keep its
    declared domain.
    """
    profile: Dict[CVariable, List[Condition]] = {}
    disqualified: Set[CVariable] = set()

    def scan_atom(atom: Condition) -> None:
        if isinstance(atom, Comparison):
            sides = (atom.lhs, atom.rhs)
            cvars = [t for t in sides if isinstance(t, CVariable)]
            has_variable = any(isinstance(t, Variable) for t in sides)
            if has_variable or len(cvars) > 1:
                disqualified.update(cvars)
            elif len(cvars) == 1:
                profile.setdefault(cvars[0], []).append(atom)
        elif isinstance(atom, LinearAtom):
            cvars = [v for v, _ in atom.coeffs if isinstance(v, CVariable)]
            has_variable = any(isinstance(v, Variable) for v, _ in atom.coeffs)
            if has_variable or len(atom.coeffs) > 1:
                disqualified.update(cvars)
            elif len(cvars) == 1:
                profile.setdefault(cvars[0], []).append(atom)

    def scan_condition(condition: Condition) -> None:
        if condition is TRUE:
            return
        for atom in condition.atoms():
            scan_atom(atom)

    for table in database:
        for tup in table:
            # Data-part c-variables join against arbitrary entries at
            # valuation time (implicit pattern matching generates
            # ``entry = value`` for values we cannot bound statically).
            for entry in tup.values:
                if isinstance(entry, CVariable):
                    disqualified.add(entry)
            scan_condition(tup.condition)

    for rule in program:
        for comparison in rule.comparisons():
            scan_condition(comparison)
        for literal in rule.literals():
            if literal.annotation is not TRUE:
                scan_condition(literal.annotation)
            # Rule-level c-variables in atom positions are bindable: they
            # unify with stored entries, so they behave like data-part
            # variables for narrowing purposes.
            for term in literal.atom.terms:
                if isinstance(term, CVariable):
                    disqualified.add(term)
        if rule.head_annotation is not None and rule.head_annotation is not TRUE:
            scan_condition(rule.head_annotation)
        for term in rule.head.terms:
            if isinstance(term, CVariable):
                disqualified.add(term)
    return profile, disqualified


def _satisfaction_vector(
    var: CVariable, value: object, atoms: Iterable[Condition]
) -> Optional[Tuple[bool, ...]]:
    vector: List[bool] = []
    assignment = {var: value if isinstance(value, Constant) else Constant(value)}
    for atom in atoms:
        try:
            vector.append(bool(atom.evaluate(assignment)))
        except Exception:
            return None
    return tuple(vector)


def narrow_domains(
    program: Program,
    database: Database,
    domains: DomainMap,
) -> NarrowingResult:
    """Shrink finite domains to one representative per distinguishable class.

    Sound for every verdict the evaluator asks of the solver (SAT,
    entailment, validity): all atoms that can ever mention a narrowed
    variable are single-variable comparisons against constants, so any
    model over the declared domain maps to a model over the narrowed one
    by replacing each narrowed variable's value with its class
    representative — truth of every atom, hence of every condition built
    from them, is preserved in both directions.  Model *counting* is not
    preserved; callers that enumerate worlds must keep the declared map.
    """
    profile, disqualified = _profile_conditions(program, database)
    narrowed_map = domains.copy()
    accounting: Dict[str, Tuple[int, int]] = {}
    for var in sorted(domains.declared(), key=lambda v: v.name):
        if var in disqualified:
            continue
        domain = domains.domain_of(var)
        if not domain.is_finite:
            continue
        size = domain.size()
        if size is None or size <= 1 or size > NARROWING_SCAN_LIMIT:
            continue
        atoms = profile.get(var, [])
        representatives: List[object] = []
        seen: Set[Tuple[bool, ...]] = set()
        failed = False
        for value in domain.raw_values():
            vector = _satisfaction_vector(var, value, atoms)
            if vector is None:
                failed = True
                break
            if vector not in seen:
                seen.add(vector)
                representatives.append(value)
        if failed or len(representatives) >= size:
            continue
        narrowed_map.declare(var, FiniteDomain(representatives))
        accounting[var.name] = (size, len(representatives))
    return NarrowingResult(domains=narrowed_map, narrowed=accounting)
