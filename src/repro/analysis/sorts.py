"""C-domain sort inference for fauré-log programs.

The c-domain is untyped — a constant is just a payload — but real
network programs draw from a handful of recognizable *sorts*: IP
addresses, IP prefixes, AS paths, numbers, and symbolic node/subnet
identifiers.  Mixing them in one comparison (``$dest = 8``, where
``$dest`` rides in an address column) almost always spells a typo, and
lexicographically ordering addresses (``"10.0.0.9" < "10.0.0.10"`` is
*false* as strings) is a classic silent bug.

This module infers, for each predicate column and each variable, the
set of sorts observed across the program: constants contribute their
own sort, and variables adopt the sorts of every column they occupy.
The inference is deliberately may-analysis shaped — an empty sort set
means "no evidence", and checks only fire when *both* sides of a
comparison carry evidence that cannot overlap.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from ..ctable.condition import Comparison, Condition, LinearAtom
from ..ctable.terms import Constant, CVariable, Term, Variable
from ..faurelog.ast import Atom, Program, Rule

__all__ = [
    "SORT_NUMBER",
    "SORT_ADDRESS",
    "SORT_PREFIX",
    "SORT_PATH",
    "SORT_SYMBOL",
    "sort_of_value",
    "SortInference",
    "infer_sorts",
]

Sort = str

SORT_NUMBER: Sort = "number"
SORT_ADDRESS: Sort = "ip-address"
SORT_PREFIX: Sort = "ip-prefix"
SORT_PATH: Sort = "path"
SORT_SYMBOL: Sort = "symbol"

#: Sorts with a meaningful total order (everything else orders only
#: lexicographically, which is almost never what the author meant).
ORDERED_SORTS: FrozenSet[Sort] = frozenset({SORT_NUMBER})

_ADDR_RE = re.compile(r"^\d{1,3}(\.\d{1,3}){3}$|^[0-9a-fA-F:]*::[0-9a-fA-F:]*$")
_PREFIX_RE = re.compile(r"^\d{1,3}(\.\d{1,3}){3}/\d{1,3}$|^[0-9a-fA-F:]+::?/\d{1,3}$")


def sort_of_value(value: object) -> Sort:
    """The sort of a raw constant payload."""
    if isinstance(value, bool) or isinstance(value, (int, float)):
        return SORT_NUMBER
    if isinstance(value, tuple):
        return SORT_PATH
    if isinstance(value, str):
        if _PREFIX_RE.match(value):
            return SORT_PREFIX
        if _ADDR_RE.match(value):
            return SORT_ADDRESS
        return SORT_SYMBOL
    return SORT_SYMBOL


#: Key for a variable: c-variables are program-global, program variables
#: are scoped to their rule (index).
VarKey = Union[CVariable, Tuple[int, Variable]]


@dataclass
class SortInference:
    """Observed sorts per predicate column and per variable."""

    column_sorts: Dict[Tuple[str, int], Set[Sort]] = field(default_factory=dict)
    var_sorts: Dict[VarKey, Set[Sort]] = field(default_factory=dict)

    def sorts_of_term(self, term: Term, rule_index: int) -> FrozenSet[Sort]:
        """Evidence for one term (empty set = no evidence)."""
        if isinstance(term, Constant):
            return frozenset({sort_of_value(term.value)})
        key = self._var_key(term, rule_index)
        if key is None:
            return frozenset()
        return frozenset(self.var_sorts.get(key, ()))

    @staticmethod
    def _var_key(term: Term, rule_index: int) -> Optional[VarKey]:
        if isinstance(term, CVariable):
            return term
        if isinstance(term, Variable):
            return (rule_index, term)
        return None


def _atoms_of(rule: Rule) -> Iterator[Atom]:
    yield rule.head
    for lit in rule.literals():
        yield lit.atom


def _conditions_of(rule: Rule) -> Iterator[Condition]:
    """Every condition attached to the rule (comparisons + annotations)."""
    for cond in rule.comparisons():
        yield cond
    for lit in rule.literals():
        yield lit.annotation


def infer_sorts(program: Program) -> SortInference:
    """Two-phase may-inference: constants → columns → variables.

    A second column pass folds variable evidence back into columns so a
    column whose every occupant is, say, compared to numbers still gets
    ``number`` evidence; the analysis stays a may-analysis (over-approx
    of observed sorts), which is what the comparison checks need.
    """
    inference = SortInference()
    columns = inference.column_sorts
    variables = inference.var_sorts

    def note_var(key: Optional[VarKey], sorts: Set[Sort]) -> None:
        if key is not None and sorts:
            variables.setdefault(key, set()).update(sorts)

    # Phase 1: constants pin down column sorts.
    for rule in program:
        for atom in _atoms_of(rule):
            for idx, term in enumerate(atom.terms):
                if isinstance(term, Constant):
                    columns.setdefault((atom.predicate, idx), set()).add(
                        sort_of_value(term.value)
                    )

    # Phase 2: variables adopt the sorts of the columns they occupy.
    # Deliberately *not* the constants they are compared against — that
    # evidence would make every cross-sort comparison self-consistent
    # and un-flaggable.  Linear arithmetic does count: it only makes
    # sense over numbers.
    for rule_index, rule in enumerate(program):
        for atom in _atoms_of(rule):
            for idx, term in enumerate(atom.terms):
                key = SortInference._var_key(term, rule_index)
                note_var(key, columns.get((atom.predicate, idx), ()))
        for cond in _conditions_of(rule):
            for atom in cond.atoms():
                if isinstance(atom, LinearAtom):
                    for var, _coeff in atom.coeffs:
                        note_var(var, {SORT_NUMBER})

    # Phase 3: fold variable evidence back into their columns.
    for rule_index, rule in enumerate(program):
        for atom in _atoms_of(rule):
            for idx, term in enumerate(atom.terms):
                key = SortInference._var_key(term, rule_index)
                if key is not None and key in variables:
                    columns.setdefault((atom.predicate, idx), set()).update(
                        variables[key]
                    )
    return inference
