"""Abstract syntax of fauré-log programs.

A fauré-log rule (paper, eq. 3) has the shape::

    H(u)[cond] :- B1(u1)[cond1], ..., Bn(un)[condn], C1, ..., Cm.

where the ``u``'s are free tuples over program variables and the c-domain
(constants and c-variables), the bracketed annotations name or constrain
tuple conditions, and the ``C``'s are explicit comparison/linear atoms.

Symbol roles in a rule (see §3's c-valuation):

* **program variables** (``x``) — bind to any c-domain element;
* **c-variables** (``$x`` / the paper's x̄) appearing in *body atom
  argument positions* — also bind, to whatever the matched entry is (this
  is how the variable-free constraint rules of Listing 3 range over
  unknowns);
* **c-variables appearing only in conditions/comparisons** — refer to the
  *global* c-variables of the database (e.g. the link-state variables of
  Listing 2) and pass through to derived conditions verbatim;
* **constants** — match themselves outright, or a c-variable entry under
  the generated equality condition (implicit pattern matching).

Condition annotations: a body-literal annotation may capture the matched
tuple's condition in a named condition variable (``[phi]``) and/or add
filter atoms (``[$x != Mkt]``, as in Listing 4).  The head annotation is
descriptive — evaluation always constructs the derived condition per
eq. 3: the conjunction of all matched tuple conditions, all body
annotation filters, and all comparison atoms.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from ..ctable.condition import Condition, TRUE, conjoin
from ..ctable.parse import Span
from ..ctable.terms import Constant, CVariable, SlotPickleMixin, Term, Variable, as_term

__all__ = ["Atom", "Literal", "BodyItem", "Rule", "Program", "ProgramError", "SafetyViolation"]


class ProgramError(ValueError):
    """A malformed program (unsafe rule, arity clash, bad stratification)."""


class Atom(SlotPickleMixin):
    """A predicate applied to terms: ``R(f, n1, $x)``.

    ``span`` records where the atom was parsed from (``None`` for atoms
    built programmatically); it is carried for diagnostics only and is
    transparent to equality and hashing.
    """

    __slots__ = ("predicate", "terms", "span")

    def __init__(self, predicate: str, terms: Sequence = (), span: Optional[Span] = None):
        if not predicate:
            raise ProgramError("empty predicate name")
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "terms", tuple(as_term(t) for t in terms))
        object.__setattr__(self, "span", span)

    def __setattr__(self, name, value):  # pragma: no cover - immutability
        raise AttributeError("Atom is immutable")

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> FrozenSet[Variable]:
        return frozenset(t for t in self.terms if isinstance(t, Variable))

    def cvariables(self) -> FrozenSet[CVariable]:
        return frozenset(t for t in self.terms if isinstance(t, CVariable))

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Atom)
            and self.predicate == other.predicate
            and self.terms == other.terms
        )

    def __hash__(self) -> int:
        return hash((self.predicate, self.terms))

    def __repr__(self) -> str:
        return f"Atom({self.predicate!r}, {list(self.terms)!r})"

    def __str__(self) -> str:
        if not self.terms:
            return self.predicate
        return f"{self.predicate}({', '.join(str(t) for t in self.terms)})"


class Literal(SlotPickleMixin):
    """A possibly negated atom with an optional condition annotation.

    ``condition_var`` names the captured tuple condition (``[phi]``);
    ``annotation`` is a filter condition conjoined onto the match
    (``[$x != Mkt]``).  Both may be present.  ``span`` (diagnostics
    only, equality-transparent) covers the whole literal including any
    negation marker and annotation.
    """

    __slots__ = ("atom", "negated", "condition_var", "annotation", "span")

    def __init__(
        self,
        atom: Atom,
        negated: bool = False,
        condition_var: Optional[str] = None,
        annotation: Condition = TRUE,
        span: Optional[Span] = None,
    ):
        object.__setattr__(self, "atom", atom)
        object.__setattr__(self, "negated", bool(negated))
        object.__setattr__(self, "condition_var", condition_var)
        object.__setattr__(self, "annotation", annotation)
        object.__setattr__(self, "span", span if span is not None else atom.span)

    def __setattr__(self, name, value):  # pragma: no cover - immutability
        raise AttributeError("Literal is immutable")

    @property
    def predicate(self) -> str:
        return self.atom.predicate

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Literal)
            and self.atom == other.atom
            and self.negated == other.negated
            and self.condition_var == other.condition_var
            and self.annotation == other.annotation
        )

    def __hash__(self) -> int:
        return hash((self.atom, self.negated, self.condition_var, self.annotation))

    def __repr__(self) -> str:
        return (
            f"Literal({self.atom!r}, negated={self.negated}, "
            f"condition_var={self.condition_var!r}, annotation={self.annotation!r})"
        )

    def __str__(self) -> str:
        prefix = "not " if self.negated else ""
        suffix = ""
        ann_parts = []
        if self.condition_var:
            ann_parts.append(self.condition_var)
        if self.annotation is not TRUE:
            ann_parts.append(str(self.annotation))
        if ann_parts:
            suffix = f"[{' AND '.join(ann_parts)}]"
        return f"{prefix}{self.atom}{suffix}"


#: A body element: a (possibly negated, annotated) literal or a bare
#: comparison/linear condition.
BodyItem = Union[Literal, Condition]


#: One range-restriction violation: ``kind`` is ``"head"`` (head variable
#: unbound), ``"negation"`` (variable only under negation) or
#: ``"comparison"`` (comparison variable unbound); ``where`` locates the
#: offending span when known.
SafetyViolation = Tuple[str, Variable, Optional[Span]]


class Rule(SlotPickleMixin):
    """One fauré-log rule; facts are rules with an empty body.

    ``span`` / ``body_spans`` (diagnostics only, equality-transparent)
    locate the rule and each body item in the source text.  With
    ``check_safety=False`` unsafe rules are admitted — the static
    analyzer uses this to *report* range-restriction violations (with
    positions) instead of dying on the first one; evaluation always
    re-validates via the default strict mode.
    """

    __slots__ = ("head", "body", "label", "head_annotation", "span", "body_spans")

    def __init__(
        self,
        head: Atom,
        body: Sequence[BodyItem] = (),
        label: Optional[str] = None,
        head_annotation: Optional[str] = None,
        span: Optional[Span] = None,
        body_spans: Optional[Sequence[Optional[Span]]] = None,
        check_safety: bool = True,
    ):
        body = tuple(body)
        for item in body:
            if not isinstance(item, (Literal, Condition)):
                raise ProgramError(f"bad body item {item!r}")
        if body_spans is not None:
            spans = tuple(body_spans)
        else:
            spans = tuple(
                item.span if isinstance(item, Literal) else None for item in body
            )
        if len(spans) != len(body):
            raise ProgramError("body_spans must align with body")
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", body)
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "head_annotation", head_annotation)
        object.__setattr__(self, "span", span if span is not None else head.span)
        object.__setattr__(self, "body_spans", spans)
        if check_safety:
            self._check_safety()

    def __setattr__(self, name, value):  # pragma: no cover - immutability
        raise AttributeError("Rule is immutable")

    # -- structure accessors -------------------------------------------------

    def literals(self) -> Iterator[Literal]:
        for item in self.body:
            if isinstance(item, Literal):
                yield item

    def positive_literals(self) -> Iterator[Literal]:
        for lit in self.literals():
            if not lit.negated:
                yield lit

    def negative_literals(self) -> Iterator[Literal]:
        for lit in self.literals():
            if lit.negated:
                yield lit

    def comparisons(self) -> Iterator[Condition]:
        for item in self.body:
            if isinstance(item, Condition):
                yield item

    @property
    def is_fact(self) -> bool:
        return not self.body

    def body_predicates(self) -> FrozenSet[str]:
        return frozenset(lit.predicate for lit in self.literals())

    def variables(self) -> FrozenSet[Variable]:
        out: Set[Variable] = set(self.head.variables())
        for lit in self.literals():
            out |= lit.atom.variables()
        return frozenset(out)

    def bindable_cvariables(self) -> FrozenSet[CVariable]:
        """C-variables in *positive body atom positions* (they bind)."""
        out: Set[CVariable] = set()
        for lit in self.positive_literals():
            out |= lit.atom.cvariables()
        return frozenset(out)

    # -- safety ----------------------------------------------------------------

    def safety_violations(self) -> List[SafetyViolation]:
        """All range-restriction violations of this rule (empty = safe).

        C-variables are exempt throughout: unbound ones are references
        to the database's global c-variables, not errors.
        """
        out: List[SafetyViolation] = []
        bound: Set[Term] = set()
        for lit in self.positive_literals():
            for t in lit.atom.terms:
                if isinstance(t, (Variable, CVariable)):
                    bound.add(t)
        # Head variables must be bound by some positive literal.
        for t in self.head.terms:
            if isinstance(t, Variable) and t not in bound:
                out.append(("head", t, self.head.span))
        # Negated-literal variables must be bound positively.
        for lit in self.negative_literals():
            for t in lit.atom.terms:
                if isinstance(t, Variable) and t not in bound:
                    out.append(("negation", t, lit.span))
        # Comparison variables must be bound positively.
        for i, item in enumerate(self.body):
            if not isinstance(item, Condition):
                continue
            for atom in item.atoms():
                for t in _condition_terms(atom):
                    if isinstance(t, Variable) and t not in bound:
                        out.append(("comparison", t, self.body_spans[i]))
        return out

    def _check_safety(self) -> None:
        for kind, term, _span in self.safety_violations():
            if kind == "head":
                raise ProgramError(
                    f"unsafe rule {self}: head variable {term} not bound in body"
                )
            if kind == "negation":
                raise ProgramError(
                    f"unsafe rule {self}: variable {term} occurs only under negation"
                )
            raise ProgramError(
                f"unsafe rule {self}: comparison variable {term} unbound"
            )

    def __eq__(self, other) -> bool:
        return isinstance(other, Rule) and self.head == other.head and self.body == other.body

    def __hash__(self) -> int:
        return hash((self.head, self.body))

    def __repr__(self) -> str:
        return f"Rule({self.head!r}, {list(self.body)!r}, label={self.label!r})"

    def __str__(self) -> str:
        prefix = f"{self.label}: " if self.label else ""
        if self.is_fact:
            return f"{prefix}{self.head}."
        body = ", ".join(str(item) for item in self.body)
        return f"{prefix}{self.head} :- {body}."


def _condition_terms(atom) -> Iterator[Term]:
    from ..ctable.condition import Comparison, LinearAtom

    if isinstance(atom, Comparison):
        yield atom.lhs
        yield atom.rhs
    elif isinstance(atom, LinearAtom):
        for v, _ in atom.coeffs:
            yield v


class Program:
    """A finite collection of fauré-log rules.

    ``check_arities=False`` admits arity-inconsistent programs so the
    static analyzer can report every clash (see :meth:`arity_clashes`)
    instead of raising on the first; evaluation uses the strict default.
    ``source`` optionally retains the program text for diagnostics.
    """

    def __init__(
        self,
        rules: Iterable[Rule] = (),
        check_arities: bool = True,
        source: Optional[str] = None,
    ):
        self.rules: List[Rule] = list(rules)
        self.source = source
        self._strict_arities = check_arities
        if check_arities:
            self._check_arities()

    def arity_clashes(self) -> List[Tuple[Atom, int]]:
        """Atoms whose arity disagrees with the first use of their predicate.

        Returns ``(atom, expected_arity)`` pairs in program order.
        """
        arities: Dict[str, int] = {}
        clashes: List[Tuple[Atom, int]] = []
        for rule in self.rules:
            atoms = [rule.head] + [lit.atom for lit in rule.literals()]
            for atom in atoms:
                known = arities.get(atom.predicate)
                if known is None:
                    arities[atom.predicate] = atom.arity
                elif known != atom.arity:
                    clashes.append((atom, known))
        return clashes

    def _check_arities(self) -> None:
        for atom, expected in self.arity_clashes():
            raise ProgramError(
                f"predicate {atom.predicate} used with arities {expected} and {atom.arity}"
            )

    def add(self, rule: Rule) -> None:
        self.rules.append(rule)
        if self._strict_arities:
            self._check_arities()

    def idb_predicates(self) -> FrozenSet[str]:
        """Predicates defined by some rule head."""
        return frozenset(r.head.predicate for r in self.rules)

    def edb_predicates(self) -> FrozenSet[str]:
        """Predicates referenced but never defined (stored c-tables)."""
        idb = self.idb_predicates()
        out: Set[str] = set()
        for rule in self.rules:
            for lit in rule.literals():
                if lit.predicate not in idb:
                    out.add(lit.predicate)
        return frozenset(out)

    def rules_for(self, predicate: str) -> List[Rule]:
        return [r for r in self.rules if r.head.predicate == predicate]

    def arity_of(self, predicate: str) -> Optional[int]:
        for rule in self.rules:
            if rule.head.predicate == predicate:
                return rule.head.arity
            for lit in rule.literals():
                if lit.predicate == predicate:
                    return lit.atom.arity
        return None

    def extended(self, other: Union["Program", Iterable[Rule]]) -> "Program":
        """A new program with the rules of ``other`` appended."""
        extra = other.rules if isinstance(other, Program) else list(other)
        return Program(self.rules + list(extra))

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def __eq__(self, other) -> bool:
        return isinstance(other, Program) and self.rules == other.rules

    def __repr__(self) -> str:
        return f"Program({self.rules!r})"

    def __str__(self) -> str:
        return "\n".join(str(r) for r in self.rules)
