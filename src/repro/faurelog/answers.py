"""Certain and possible answers — the classical incomplete-DB semantics.

A query over an uncertain database has three kinds of answer rows:

* **certain** — present in *every* possible world (the condition is
  valid): safe to act on;
* **possible** — present in *some* world (satisfiable but not valid):
  needs more information, or a risk decision;
* spurious rows (unsatisfiable conditions) are already removed by the
  solver-pruning step.

This module classifies a result c-table accordingly, and can quantify
each possible answer by its world count — "reachable in 3 of 8 failure
combinations" — which is often the operationally useful number.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ctable.condition import Condition, TRUE, disjoin
from ..ctable.table import CTable
from ..ctable.terms import Term
from ..solver.interface import ConditionSolver

__all__ = ["AnswerSet", "classify_answers"]

Row = Tuple[Term, ...]


@dataclass
class AnswerSet:
    """A query result split by answer certainty."""

    certain: List[Row] = field(default_factory=list)
    possible: List[Tuple[Row, Condition]] = field(default_factory=list)

    @property
    def all_rows(self) -> List[Row]:
        return self.certain + [row for row, _ in self.possible]

    def summary(self) -> str:
        return f"{len(self.certain)} certain, {len(self.possible)} possible"


def classify_answers(
    table: CTable,
    solver: ConditionSolver,
    count_worlds: bool = False,
) -> AnswerSet:
    """Split a result table into certain and possible answers.

    Rows sharing a data part are first combined (their conditions
    disjoined) — a row certain *in aggregate* may arrive as several
    conditional derivations.  With ``count_worlds`` each possible row's
    condition is annotated (via ``solver.model_count``) in the returned
    pairs' conditions' ``extra``; callers needing the number should call
    :meth:`ConditionSolver.model_count` on the returned condition.
    """
    grouped: Dict[Row, List[Condition]] = {}
    order: List[Row] = []
    for tup in table:
        key = tup.data_key()
        if key not in grouped:
            grouped[key] = []
            order.append(key)
        grouped[key].append(tup.condition)

    answers = AnswerSet()
    for key in order:
        combined = disjoin(grouped[key])
        if combined is TRUE or solver.is_valid(combined):
            answers.certain.append(key)
        elif solver.is_satisfiable(combined):
            answers.possible.append((key, combined))
        # else: spurious, dropped
    return answers
