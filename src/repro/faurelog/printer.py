"""Pretty-printing fauré-log back to parseable text.

``str(rule)`` is readable; this module guarantees the stronger property
that ``parse_program(format_program(p))`` reproduces ``p`` exactly —
constants are quoted whenever the bare spelling would re-parse as
something else (a program variable, a number, an address, a keyword).
"""

from __future__ import annotations

import re
from typing import List

from ..ctable.condition import (
    And,
    Comparison,
    Condition,
    FalseCond,
    LinearAtom,
    Not,
    Or,
    TrueCond,
)
from ..ctable.terms import Constant, CVariable, Term, Variable
from .ast import Atom, Literal, Program, Rule

__all__ = [
    "format_term",
    "format_condition",
    "format_atom",
    "format_literal",
    "format_rule",
    "format_program",
]

_BARE_CONSTANT = re.compile(r"^[A-Z][A-Za-z0-9_&-]*$")
_KEYWORDS = {"AND", "OR", "NOT"}


def _quote(text: str) -> str:
    return "'" + text.replace("\\", "\\\\").replace("'", "\\'") + "'"


def format_term(term: Term) -> str:
    """One term, in a spelling the tokenizer maps back to the same term."""
    if isinstance(term, CVariable):
        return f"${term.name}"
    if isinstance(term, Variable):
        return term.name
    if isinstance(term, Constant):
        value = term.value
        if isinstance(value, bool):
            # bools are not expressible bare; quote via int-like? keep 0/1
            return str(int(value))
        if isinstance(value, (int, float)):
            return repr(value)
        if isinstance(value, tuple):
            return "[" + " ".join(_path_element(v) for v in value) + "]"
        if isinstance(value, str):
            if _BARE_CONSTANT.match(value) and value.upper() not in _KEYWORDS:
                return value
            return _quote(value)
    raise TypeError(f"cannot format term {term!r}")


def _path_element(value) -> str:
    if isinstance(value, str):
        if re.match(r"^[A-Za-z0-9_.&/:-]+$", value):
            return value
        return _quote(value)
    return repr(value)


def format_condition(condition: Condition) -> str:
    """A condition in the shared syntax (parenthesized where needed)."""
    if isinstance(condition, TrueCond):
        return "1 = 1"
    if isinstance(condition, FalseCond):
        return "1 = 2"
    if isinstance(condition, Comparison):
        return f"{format_term(condition.lhs)} {condition.op} {format_term(condition.rhs)}"
    if isinstance(condition, LinearAtom):
        parts: List[str] = []
        if len(condition.coeffs) == 1 and condition.coeffs[0][1] == 1:
            # a bare "$a op k" would re-parse as a Comparison; keep the
            # sum shape with a harmless zero addend
            parts.append("0")
        for var, coeff in condition.coeffs:
            if coeff == 1:
                parts.append(f"${var.name}")
            else:
                # integer multiples unroll; fractional coefficients are
                # outside the textual syntax
                if coeff != int(coeff) or coeff < 1:
                    raise ValueError(
                        f"linear coefficient {coeff} is not expressible in text"
                    )
                parts.extend([f"${var.name}"] * int(coeff))
        bound = condition.bound
        bound_text = repr(int(bound)) if float(bound).is_integer() else repr(bound)
        return f"{' + '.join(parts)} {condition.op} {bound_text}"
    if isinstance(condition, And):
        return "(" + " AND ".join(format_condition(c) for c in condition.children) + ")"
    if isinstance(condition, Or):
        return "(" + " OR ".join(format_condition(c) for c in condition.children) + ")"
    if isinstance(condition, Not):
        return f"NOT ({format_condition(condition.child)})"
    raise TypeError(f"cannot format condition {condition!r}")


def format_atom(atom: Atom) -> str:
    if not atom.terms:
        return atom.predicate
    return f"{atom.predicate}({', '.join(format_term(t) for t in atom.terms)})"


def format_literal(literal: Literal) -> str:
    prefix = "not " if literal.negated else ""
    suffix = ""
    parts: List[str] = []
    if literal.condition_var:
        parts.append(literal.condition_var)
    if not isinstance(literal.annotation, TrueCond):
        parts.append(format_condition(literal.annotation))
    if parts:
        suffix = f"[{', '.join(parts)}]"
    return f"{prefix}{format_atom(literal.atom)}{suffix}"


def format_rule(rule: Rule) -> str:
    label = f"{rule.label}: " if rule.label else ""
    head = format_atom(rule.head)
    if rule.head_annotation:
        head += f"[{rule.head_annotation}]"
    if rule.is_fact:
        return f"{label}{head}."
    body = ", ".join(
        format_literal(item) if isinstance(item, Literal) else format_condition(item)
        for item in rule.body
    )
    return f"{label}{head} :- {body}."


def format_program(program: Program) -> str:
    """The whole program, one rule per line, re-parseable."""
    return "\n".join(format_rule(rule) for rule in program)
