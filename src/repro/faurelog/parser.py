"""Textual syntax for fauré-log programs.

Grammar (one or more rules, ``%`` comments allowed anywhere)::

    rule      := [label ':'] head [annotation] (':-' body)? '.'
    head      := atom
    body      := item (',' item)*
    item      := ['not'|'¬'|'!'] atom [annotation]    -- literal
               | condition-atom                        -- comparison / linear
    atom      := pred ['(' term (',' term)* ')']
    annotation:= '[' ann-item (AND|',') ann-item ... ']'
    ann-item  := ident                                  -- condition variable
               | condition-atom                         -- filter

Terms follow :mod:`repro.ctable.parse`: ``$x`` c-variables, lowercase
identifiers as program variables, capitalized identifiers / quoted
strings / numbers / ``[A B C]`` paths as constants.  The paper's rules in
Listings 2–4 transcribe directly, e.g.::

    q5: R(f, n1, n2) :- F(f, n1, n3), R(f, n3, n2).
    q6: T1(f, n1, n2) :- R(f, n1, n2), $x + $y + $z = 1.
    q9: panic :- R(Mkt, CS, $p), not Fw(Mkt, CS).
    q21: Lb2($x, $y) :- Lb1($x, $y)[$x != Mkt].
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..ctable.condition import Condition, TRUE, conjoin
from ..ctable.parse import (
    ParseError,
    Span,
    TokenStream,
    default_resolver,
    parse_condition,
    parse_term,
    tokenize,
)
from ..ctable.terms import Constant, Term, Variable
from .ast import Atom, BodyItem, Literal, Program, Rule

__all__ = ["parse_program", "parse_rule", "ParseError"]

_CMP_START = {"=", "==", "!=", "<>", "<", "<=", ">", ">="}


def _looks_like_atom(stream: TokenStream) -> bool:
    """An identifier not followed by a comparison/sum is a predicate."""
    tok = stream.peek()
    if tok[0] != "ident":
        return False
    nxt = stream.peek(1)
    if nxt[0] == "op" and nxt[1] == "(":
        return True
    # 0-ary predicate (e.g. `panic`): followed by rule punctuation.
    if nxt[0] == "op" and nxt[1] in (",", ".", ":-", "["):
        return True
    if nxt[0] == "eof":
        return True
    return False


def _parse_atom(stream: TokenStream) -> Atom:
    tok = stream.expect("ident")
    predicate = tok[1]
    terms: List[Term] = []
    if stream.accept("op", "("):
        while True:
            terms.append(parse_term(stream, default_resolver))
            if stream.accept("op", ")"):
                break
            stream.expect("op", ",")
    return Atom(predicate, terms, span=stream.span_from(tok[2]))


def _parse_annotation(stream: TokenStream) -> Tuple[Optional[str], Condition]:
    """Parse ``[...]``: condition variables and/or filter atoms."""
    cond_var: Optional[str] = None
    filters: List[Condition] = []
    while True:
        tok = stream.peek()
        nxt = stream.peek(1)
        is_bare_ident = (
            tok[0] == "ident"
            and nxt[0] == "op"
            and nxt[1] in ("]", ",")
        ) or (tok[0] == "ident" and nxt[0] == "kw")
        if is_bare_ident:
            stream.next()
            if cond_var is None:
                cond_var = tok[1]
            # Extra condition variables are redundant under eq. 3
            # semantics; accept and ignore.
        else:
            filters.append(parse_condition(stream, default_resolver))
        if stream.accept("op", "]"):
            break
        if not (stream.accept("op", ",") or stream.accept("kw", "AND")):
            got = stream.peek()
            raise ParseError(
                f"expected ',' or AND or ']' in annotation, got {got[1]!r}",
                got[2],
                stream.text,
            )
    return cond_var, conjoin(filters)


def _parse_literal(stream: TokenStream) -> Literal:
    start = stream.peek()[2]
    negated = False
    if (
        stream.accept("kw", "NOT")
        or stream.accept("op", "¬")
        or stream.accept("op", "!")
    ):
        negated = True
    atom = _parse_atom(stream)
    cond_var: Optional[str] = None
    annotation: Condition = TRUE
    if stream.accept("op", "["):
        cond_var, annotation = _parse_annotation(stream)
    return Literal(
        atom,
        negated=negated,
        condition_var=cond_var,
        annotation=annotation,
        span=stream.span_from(start),
    )


def _parse_body_item(stream: TokenStream) -> BodyItem:
    tok = stream.peek()
    if tok[0] == "kw" and tok[1] == "NOT":
        return _parse_literal(stream)
    if tok[0] == "op" and tok[1] in ("¬", "!"):
        return _parse_literal(stream)
    if _looks_like_atom(stream):
        return _parse_literal(stream)
    # Otherwise a comparison / linear atom over terms.
    return parse_condition(stream, default_resolver)


def parse_rule(stream: TokenStream, check_safety: bool = True) -> Rule:
    """Parse one rule (label optional, terminating '.' required)."""
    label: Optional[str] = None
    tok = stream.peek()
    start = tok[2]
    nxt = stream.peek(1)
    if tok[0] == "ident" and nxt[0] == "op" and nxt[1] == ":":
        label = tok[1]
        stream.next()
        stream.next()
    head = _parse_atom(stream)
    head_annotation: Optional[str] = None
    if stream.accept("op", "["):
        cond_var, filters = _parse_annotation(stream)
        parts = []
        if cond_var:
            parts.append(cond_var)
        if filters is not TRUE:
            parts.append(str(filters))
        head_annotation = " AND ".join(parts) if parts else None
    body: List[BodyItem] = []
    body_spans: List[Optional[Span]] = []
    if stream.accept("op", ":-"):
        while True:
            item_start = stream.peek()[2]
            body.append(_parse_body_item(stream))
            body_spans.append(stream.span_from(item_start))
            if not stream.accept("op", ","):
                break
    stream.expect("op", ".")
    return Rule(
        head,
        body,
        label=label,
        head_annotation=head_annotation,
        span=stream.span_from(start),
        body_spans=body_spans,
        check_safety=check_safety,
    )


def parse_program(text: str, check_safety: bool = True, check_arities: bool = True) -> Program:
    """Parse a whole program (rule labels may be written ``qN:``).

    The relaxed flags admit unsafe / arity-inconsistent programs so the
    static analyzer (:mod:`repro.analysis`) can report *every* problem
    with source positions instead of dying on the first; evaluation
    entry points keep the strict defaults.
    """
    stream = TokenStream(tokenize(text), text)
    rules: List[Rule] = []
    while not stream.exhausted:
        rules.append(parse_rule(stream, check_safety=check_safety))
    return Program(rules, check_arities=check_arities, source=text)
