"""Goal-directed evaluation by program specialization.

Bottom-up evaluation computes *all* derivable facts, even when the
caller asks a point query like Listing 2's q7 ("is 2 reachable from 5
for this flow?").  This module implements the classic remedy in its
constant-propagation form (a restricted magic-sets transform):

1. unify the goal with each head, pushing the goal's constants into the
   rule;
2. every IDB body atom whose arguments now contain constants becomes a
   call to a *specialized* version of its predicate (named
   ``pred@c0=...``), generated the same way;
3. evaluate the (small) specialized program bottom-up.

For the per-flow reachability program, a goal ``R(p10, 2, 5)``
specializes into rules that only ever scan ``F(p10, _, _)`` — one
index probe instead of the whole forwarding table.

The transform is semantics-preserving: every specialized rule is the
original rule with a substitution applied, so derivations correspond
one-to-one on the goal-relevant fragment.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ctable.condition import Condition
from ..ctable.table import CTable, Database
from ..ctable.terms import Constant, CVariable, Term, Variable
from ..engine.stats import EvalStats
from ..solver.interface import ConditionSolver
from .ast import Atom, Literal, Program, ProgramError, Rule
from .evaluation import evaluate

__all__ = ["specialize", "solve_goal"]

#: A binding pattern: per position, the pinned constant or None.
Pattern = Tuple[Optional[Constant], ...]


def _pattern_of(atom: Atom) -> Pattern:
    return tuple(t if isinstance(t, Constant) else None for t in atom.terms)


def _specialized_name(predicate: str, pattern: Pattern) -> str:
    if not any(c is not None for c in pattern):
        return predicate
    cells = []
    for i, c in enumerate(pattern):
        if c is not None:
            text = str(c.value).replace("@", "_").replace("=", "_")
            cells.append(f"{i}={text}")
    return f"{predicate}@{','.join(cells)}"


def _unify_head(head: Atom, pattern: Pattern) -> Optional[Dict[Term, Term]]:
    """Substitution pinning head symbols to the pattern's constants."""
    subst: Dict[Term, Term] = {}
    for term, want in zip(head.terms, pattern):
        if want is None:
            continue
        if isinstance(term, Constant):
            if term != want:
                return None
        else:
            bound = subst.get(term)
            if bound is not None and bound != want:
                return None
            subst[term] = want
    return subst


def _substitute_atom(atom: Atom, subst: Dict[Term, Term]) -> Atom:
    return Atom(atom.predicate, [subst.get(t, t) for t in atom.terms])


def specialize(program: Program, goal: Atom) -> Tuple[Program, Atom]:
    """Specialize a program toward a goal atom.

    Returns the specialized program and the goal rewritten onto the
    specialized predicate.  EDB predicates are never renamed (their
    constants are handled by index probes at evaluation time).
    """
    idb = program.idb_predicates()
    if goal.predicate not in idb:
        raise ProgramError(f"goal predicate {goal.predicate} is not defined")
    goal_pattern = _pattern_of(goal)

    generated: List[Rule] = []
    done: Set[Tuple[str, Pattern]] = set()
    worklist: List[Tuple[str, Pattern]] = [(goal.predicate, goal_pattern)]

    while worklist:
        predicate, pattern = worklist.pop()
        key = (predicate, pattern)
        if key in done:
            continue
        done.add(key)
        new_name = _specialized_name(predicate, pattern)
        for rule in program.rules_for(predicate):
            subst = _unify_head(rule.head, pattern)
            if subst is None:
                continue
            new_head = Atom(new_name, [subst.get(t, t) for t in rule.head.terms])
            new_body: List = []
            for item in rule.body:
                if isinstance(item, Literal):
                    atom = _substitute_atom(item.atom, subst)
                    if atom.predicate in idb and not item.negated:
                        sub_pattern = _pattern_of(atom)
                        worklist.append((atom.predicate, sub_pattern))
                        atom = Atom(
                            _specialized_name(atom.predicate, sub_pattern), atom.terms
                        )
                    elif atom.predicate in idb and item.negated:
                        # Negated IDB: keep the unspecialized predicate and
                        # make sure its full extension is computed.
                        worklist.append((atom.predicate, tuple([None] * atom.arity)))
                    new_body.append(
                        Literal(
                            atom,
                            negated=item.negated,
                            condition_var=item.condition_var,
                            annotation=item.annotation.substitute(subst),
                        )
                    )
                else:
                    new_body.append(item.substitute(subst))
            generated.append(Rule(new_head, new_body, label=rule.label))

    specialized_goal = Atom(_specialized_name(goal.predicate, goal_pattern), goal.terms)
    return Program(generated), specialized_goal


def solve_goal(
    program: Program,
    database: Database,
    goal: Atom,
    solver: Optional[ConditionSolver] = None,
    stats: Optional[EvalStats] = None,
) -> CTable:
    """Answer a point query: specialize, evaluate, select.

    Returns a c-table with the goal's schema containing the tuples
    matching the goal's constants (conditions attached as usual).
    """
    specialized, new_goal = specialize(program, goal)
    result = evaluate(specialized, database, solver=solver, stats=stats)
    table = result.table(new_goal.predicate)
    out = CTable(goal.predicate, table.schema)
    for tup in table:
        keep = True
        for value, want in zip(tup.values, goal.terms):
            if isinstance(want, Constant) and isinstance(value, Constant):
                if value != want:
                    keep = False
                    break
        if keep:
            out.add(tup)
    return out
