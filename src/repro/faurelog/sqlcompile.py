"""Compiling fauré-log onto the SQL engine — the paper's §6 architecture.

The paper does *not* run a bespoke datalog engine: it rewrites fauré-log
onto PostgreSQL in three steps (generate data parts in pure SQL, attach
conditions, prune with Z3), driving recursion by stratified iteration
outside the database.  This module reproduces that architecture on our
mini-SQL engine, giving the project the same two-engine structure:

* :class:`SqlRuleCompiler` — one rule body becomes one SELECT over the
  engine's extended relational algebra (scans, products, condition
  selections), with the head as the projection;
* :class:`SqlProgramEvaluator` — stratified, iterated execution: per
  stratum, run each rule's SELECT, insert the derived (data, condition)
  pairs into the IDB table, repeat until no tuple with a non-subsumed
  condition appears.

Full language coverage: joins, comparisons, implicit pattern matching,
and stratified negation (compiled to :class:`AntiJoin` — NOT EXISTS with
the c-table complement condition).  Equivalence with the native
evaluator is property-tested.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..ctable.condition import Comparison, Condition, TRUE, conjoin
from ..ctable.table import CTable, Database
from ..ctable.terms import Constant, CVariable, Term, Variable
from ..engine.algebra import (
    AntiJoin,
    ColumnRef,
    ConditionSelection,
    PlanNode,
    Product,
    Projection,
    Rename,
    Scan,
    evaluate_plan,
)
from ..engine.stats import EvalStats
from ..solver.interface import ConditionSolver
from .ast import Literal, Program, ProgramError, Rule
from .stratify import stratify

__all__ = ["SqlRuleCompiler", "SqlProgramEvaluator", "compile_rule"]


class SqlRuleCompiler:
    """Translate one positive rule body into an algebra plan.

    Every positive literal becomes an aliased scan; repeated symbols and
    constants become WHERE conditions over qualified columns (constants
    compare against the column — the engine turns that into implicit
    pattern matching on c-variable entries); rule comparisons translate
    with bindable symbols replaced by their first column occurrence.
    """

    def __init__(self, rule: Rule, db: Database):
        self.rule = rule
        self.db = db

    def compile(self) -> Tuple[PlanNode, List[str]]:
        """Returns (plan, head column template).

        The head template lists, per head term, either a qualified
        column name (for bound symbols) or ``None`` (for constant /
        global-c-variable head terms, filled in afterwards).
        """
        rule = self.rule
        positives = list(rule.positive_literals())
        if not positives:
            raise ProgramError(f"cannot compile a fact via SQL: {rule}")

        # one aliased, column-qualified scan per literal
        plans: List[PlanNode] = []
        first_column: Dict[Term, str] = {}
        where: List[Condition] = []
        for index, literal in enumerate(positives):
            table = self.db.table(literal.predicate)
            alias = f"t{index}"
            mapping = {c: f"{alias}.{c}" for c in table.schema}
            plans.append(Rename(Scan(literal.predicate, alias), mapping, name=alias))
            for position, term in enumerate(literal.atom.terms):
                column = f"{alias}.{table.schema[position]}"
                if isinstance(term, (Variable, CVariable)):
                    bound = first_column.get(term)
                    if bound is None:
                        first_column[term] = column
                    else:
                        where.append(
                            Comparison(ColumnRef(bound), "=", ColumnRef(column))
                        )
                else:  # constant pattern: implicit matching via comparison
                    where.append(Comparison(ColumnRef(column), "=", term))
            if literal.annotation is not TRUE:
                where.append(self._columnize(literal.annotation, first_column))

        plan: PlanNode = plans[0]
        for nxt in plans[1:]:
            plan = Product(plan, nxt)
        for comparison in rule.comparisons():
            where.append(self._columnize(comparison, first_column))
        if where:
            plan = ConditionSelection(plan, conjoin(where))

        # negated literals: one anti-join each (NOT EXISTS with the
        # c-table complement condition).  Safety guarantees all their
        # program variables are bound; constants anti-join against a
        # filtered scan of the negated relation.
        for neg_index, literal in enumerate(rule.negative_literals()):
            table = self.db.table(literal.predicate)
            alias = f"n{neg_index}"
            mapping = {c: f"{alias}.{c}" for c in table.schema}
            right: PlanNode = Rename(
                Scan(literal.predicate, alias), mapping, name=alias
            )
            on: List[Tuple[str, str]] = []
            right_filters: List[Condition] = []
            for position, term in enumerate(literal.atom.terms):
                column = f"{alias}.{table.schema[position]}"
                if isinstance(term, (Variable, CVariable)) and term in first_column:
                    on.append((first_column[term], column))
                elif isinstance(term, Variable):
                    raise ProgramError(
                        f"unbound variable {term} under negation in {rule}"
                    )
                else:
                    # constant or global c-variable: restrict the right side
                    right_filters.append(
                        Comparison(ColumnRef(column), "=", term)
                    )
            if literal.annotation is not TRUE:
                raise ProgramError(
                    f"annotated negated literal {literal} is not SQL-compilable"
                )
            if right_filters:
                right = ConditionSelection(right, conjoin(right_filters))
            plan = AntiJoin(plan, right, on=on)

        # head projection template
        head_columns: List[Optional[str]] = []
        for term in rule.head.terms:
            if isinstance(term, (Variable, CVariable)) and term in first_column:
                head_columns.append(first_column[term])
            elif isinstance(term, Variable):
                raise ProgramError(f"unsafe head variable {term} in {rule}")
            else:
                head_columns.append(None)  # constant or global c-variable
        projected: List[str] = []
        for column in head_columns:
            if column is not None and column not in projected:
                projected.append(column)
        plan = Projection(plan, projected, merge=False)
        self._head_columns = head_columns
        self._projected = projected
        return plan, projected

    def _columnize(self, condition: Condition, first_column: Dict[Term, str]) -> Condition:
        """Replace bindable symbols in a condition by their columns."""
        mapping = {
            term: ColumnRef(column) for term, column in first_column.items()
        }
        return condition.substitute(mapping)

    def head_rows(self, result: CTable) -> List[Tuple[Tuple[Term, ...], Condition]]:
        """Assemble full head tuples from the projected result."""
        rows: List[Tuple[Tuple[Term, ...], Condition]] = []
        index_of = {column: i for i, column in enumerate(self._projected)}
        for tup in result:
            values: List[Term] = []
            for term, column in zip(self.rule.head.terms, self._head_columns):
                if column is None:
                    values.append(term)
                else:
                    values.append(tup.values[index_of[column]])
            rows.append((tuple(values), tup.condition))
        return rows


def compile_rule(rule: Rule, db: Database) -> PlanNode:
    """Convenience: the algebra plan of one rule (for EXPLAIN)."""
    compiler = SqlRuleCompiler(rule, db)
    plan, _ = compiler.compile()
    return plan


class SqlProgramEvaluator:
    """Stratified iteration of SQL-compiled rules (the paper's driver)."""

    def __init__(
        self,
        database: Database,
        solver: Optional[ConditionSolver] = None,
        max_iterations: Optional[int] = None,
    ):
        self.database = database
        self.solver = solver
        self.max_iterations = max_iterations
        self.stats = EvalStats()

    def evaluate(self, program: Program) -> Database:
        """Run to fixpoint; returns the IDB as a database."""
        idb = program.idb_predicates()
        clash = idb & set(self.database.names())
        if clash:
            raise ProgramError(f"IDB predicates shadow stored tables: {sorted(clash)}")

        # IDB tables live inside the (temporary) working database so
        # compiled plans can scan them.
        working = Database([t for t in self.database])
        tables: Dict[str, CTable] = {}
        conditions: Dict[str, Dict[Tuple[Term, ...], List[Condition]]] = {}
        for predicate in idb:
            arity = program.arity_of(predicate) or 0
            table = working.create_table(predicate, [f"c{i}" for i in range(arity)])
            tables[predicate] = table
            conditions[predicate] = {}

        def insert(predicate: str, values: Tuple[Term, ...], condition: Condition) -> bool:
            if self.solver is not None and not self.solver.is_satisfiable(condition):
                self.stats.tuples_pruned += 1
                return False
            per = conditions[predicate]
            existing = per.get(values)
            if existing is not None:
                if condition in existing:
                    return False
                if self.solver is not None:
                    from ..ctable.condition import disjoin

                    if self.solver.implies(condition, disjoin(existing)):
                        return False
            per.setdefault(values, []).append(condition)
            tables[predicate].add(list(values), condition)
            self.stats.tuples_generated += 1
            return True

        for stratum in stratify(program):
            rules = [r for r in program if r.head.predicate in stratum]
            compiled: List[Tuple[Rule, Optional[SqlRuleCompiler], Optional[PlanNode]]] = []
            for rule in rules:
                if rule.is_fact:
                    compiled.append((rule, None, None))
                else:
                    compiler = SqlRuleCompiler(rule, working)
                    plan, _ = compiler.compile()
                    compiled.append((rule, compiler, plan))
            iteration = 0
            changed = True
            while changed:
                if self.max_iterations is not None and iteration >= self.max_iterations:
                    raise ProgramError(
                        f"fixpoint exceeded {self.max_iterations} iterations"
                    )
                changed = False
                for rule, compiler, plan in compiled:
                    if compiler is None:
                        values = tuple(rule.head.terms)
                        if insert(rule.head.predicate, values, TRUE):
                            changed = True
                        continue
                    result = evaluate_plan(
                        plan, working, solver=self.solver, prune=True, stats=self.stats
                    )
                    for values, condition in compiler.head_rows(result):
                        if insert(rule.head.predicate, values, condition):
                            changed = True
                iteration += 1
                self.stats.iterations += 1

        out = Database()
        for table in tables.values():
            out.add_table(table)
        return out
