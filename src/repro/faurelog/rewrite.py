"""Update rewrite — incorporating network changes into constraints (§5).

The category-(ii) test verifies a constraint C *after* an update U by
rewriting C into C′ such that C′ holds before U iff C holds after U
(following Levy–Sagiv "queries independent of updates", the paper's
[37]).  Listing 4 shows the pattern: insertions become a copy rule plus a
fact; a deletion of tuple (a, b) becomes one rule per attribute keeping
the tuples that differ there; the constraint then reads the final
rewritten relation instead of the original.

The generated rules are deliberately existential-free, which is exactly
the shape :func:`repro.faurelog.containment.unfold` can push negation
through — so the rewritten constraint feeds straight into the
category-(i) containment machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..ctable.condition import Comparison, Condition, FalseCond, TRUE, TrueCond, conjoin
from ..ctable.table import CTable, Database
from ..ctable.terms import Constant, CVariable, Term, Variable, as_term
from .ast import Atom, Literal, Program, ProgramError, Rule

__all__ = [
    "Insertion",
    "Deletion",
    "Update",
    "rewrite_constraint",
    "apply_update",
]


@dataclass(frozen=True)
class Insertion:
    """Add one tuple to a relation (values: constants or c-variables)."""

    predicate: str
    values: Tuple

    def __str__(self) -> str:
        vals = ", ".join(str(as_term(v)) for v in self.values)
        return f"+{self.predicate}({vals})"


@dataclass(frozen=True)
class Deletion:
    """Remove tuples matching a pattern (``None`` = wildcard position)."""

    predicate: str
    pattern: Tuple

    def __str__(self) -> str:
        cells = ", ".join("_" if v is None else str(as_term(v)) for v in self.pattern)
        return f"-{self.predicate}({cells})"


#: An update is an ordered sequence of insertions and deletions.
Update = Sequence[Union[Insertion, Deletion]]


def _arity_of_op(op: Union[Insertion, Deletion]) -> int:
    return len(op.values) if isinstance(op, Insertion) else len(op.pattern)


def rewrite_constraint(
    constraint: Program,
    update: Update,
    suffix: str = "u",
) -> Program:
    """Fold an update into a constraint program (Listing 4's rewrite).

    Every relation touched by the update gains a chain of versioned
    predicates (``Lb__u1``, ``Lb__u2``, ...), one step per operation;
    the constraint's references to the relation are redirected to the
    final version.  The returned program holds *before* the update iff
    the original constraint holds *after* it.
    """
    version: Dict[str, int] = {}
    current_name: Dict[str, str] = {}
    extra_rules: List[Rule] = []

    def step_name(pred: str) -> str:
        version[pred] = version.get(pred, 0) + 1
        name = f"{pred}__{suffix}{version[pred]}"
        return name

    for op in update:
        pred = op.predicate
        arity = _arity_of_op(op)
        prev = current_name.get(pred, pred)
        new = step_name(pred)
        head_vars = [Variable(f"v{i}") for i in range(arity)]
        if isinstance(op, Insertion):
            # copy rule + inserted fact
            extra_rules.append(
                Rule(
                    Atom(new, head_vars),
                    [Literal(Atom(prev, head_vars))],
                    label=f"{new}_copy",
                )
            )
            extra_rules.append(
                Rule(
                    Atom(new, [as_term(v) for v in op.values]),
                    [],
                    label=f"{new}_insert",
                )
            )
        else:
            # one keep-rule per constrained position
            concrete = [
                (i, as_term(v)) for i, v in enumerate(op.pattern) if v is not None
            ]
            if not concrete:
                # Deleting everything: the new relation has no rules and
                # is empty; still register the name redirect.
                current_name[pred] = new
                continue
            for i, value in concrete:
                extra_rules.append(
                    Rule(
                        Atom(new, head_vars),
                        [
                            Literal(Atom(prev, head_vars)),
                            Comparison(head_vars[i], "!=", value),
                        ],
                        label=f"{new}_keep{i}",
                    )
                )
        current_name[pred] = new

    def redirect_literal(literal: Literal) -> Literal:
        target = current_name.get(literal.predicate)
        if target is None:
            return literal
        return Literal(
            Atom(target, literal.atom.terms),
            negated=literal.negated,
            condition_var=literal.condition_var,
            annotation=literal.annotation,
        )

    rewritten: List[Rule] = []
    for rule in constraint:
        if rule.head.predicate in current_name:
            raise ProgramError(
                f"constraint defines {rule.head.predicate}, which the update modifies"
            )
        body = [
            redirect_literal(item) if isinstance(item, Literal) else item
            for item in rule.body
        ]
        rewritten.append(
            Rule(rule.head, body, label=rule.label, head_annotation=rule.head_annotation)
        )
    return Program(rewritten + extra_rules)


def apply_update(database: Database, update: Update) -> Database:
    """Materialize an update on a c-table database (returns a copy).

    Insertions append the tuple.  Deletions respect c-table semantics: a
    stored tuple whose entries *may* equal the deletion pattern (because
    they are c-variables) survives with the negated match conjoined onto
    its condition; certain matches are dropped outright.
    """
    result = database.copy()
    for op in update:
        table = result.table(op.predicate)
        if isinstance(op, Insertion):
            if len(op.values) != table.arity:
                raise ProgramError(
                    f"insertion arity {len(op.values)} != {table.arity} "
                    f"for {op.predicate}"
                )
            table.add([as_term(v) for v in op.values])
            continue
        if len(op.pattern) != table.arity:
            raise ProgramError(
                f"deletion arity {len(op.pattern)} != {table.arity} for {op.predicate}"
            )
        pattern = [None if v is None else as_term(v) for v in op.pattern]
        replacement = CTable(table.name, table.schema)
        for tup in table:
            eqs: List[Condition] = []
            dead_match = False
            for entry, want in zip(tup.values, pattern):
                if want is None:
                    continue
                cond = Comparison(entry, "=", want).constant_fold()
                if isinstance(cond, FalseCond):
                    dead_match = True
                    break
                if not isinstance(cond, TrueCond):
                    eqs.append(cond)
            if dead_match:
                replacement.add(tup)  # cannot match: keep unchanged
                continue
            match_cond = conjoin(eqs)
            if isinstance(match_cond, TrueCond) and isinstance(tup.condition, TrueCond):
                continue  # certain match of an unconditional tuple: drop
            survived = conjoin([tup.condition, match_cond.negate()])
            if not isinstance(survived, FalseCond):
                replacement.add(tup.values, survived)
        result.replace_table(replacement)
    return result
