"""Stratified (semi-naive) fixpoint evaluation of fauré-log programs.

Evaluation follows the paper's recipe: the classic datalog fixpoint, with
the c-valuation of :mod:`repro.faurelog.valuation` in place of plain
variable valuation, stratification for negation, and the solver in two
roles —

* **pruning** (the paper's step 3): derived tuples whose conditions are
  unsatisfiable are dropped;
* **condition-aware dedup**: a derived tuple is *new* only when its
  condition is not implied by the disjunction of the conditions already
  recorded for the same data part.  This is what makes recursion over
  c-tables terminate: once the recorded conditions cover all worlds in
  which a fact holds, further derivations stop contributing.

Time spent in the solver is charged to ``stats.solver_seconds``; the
remainder of the evaluation wall time is the "sql" bucket, giving the
same split Table 4 reports.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (analysis imports ast)
    from ..analysis.optimize import ConditionPrecheck

from ..ctable.condition import Condition, FalseCond, TRUE, disjoin
from ..ctable.table import CTable, Database
from ..ctable.terms import Term
from ..engine.stats import EvalStats, phase_clock
from ..engine.storage import IndexedTable, Storage
from ..robustness.errors import BudgetExceeded
from ..robustness.governor import Governor
from ..robustness.verdict import Trivalent, Verdict
from ..solver.interface import ConditionSolver
from .ast import Program, ProgramError, Rule
from .stratify import stratify
from .valuation import build_head, derive

__all__ = ["FaureEvaluator", "evaluate"]


class _ConditionIndex:
    """Per-relation map: data part → conditions recorded so far.

    Alongside each recorded (original) condition, the *canonical* form is
    kept in a set, so a re-derived condition that is semantically equal
    but syntactically different — reordered conjuncts, un-folded
    constants — is recognised by a set lookup instead of a solver
    implication call.  Recorded originals are what end up in the result
    table, so output stays byte-identical with memoization on or off.
    """

    def __init__(self) -> None:
        self._by_key: Dict[Tuple[Term, ...], List[Condition]] = {}
        self._canon_by_key: Dict[Tuple[Term, ...], set] = {}
        # Cache of disjoin(existing) per key, invalidated on record():
        # is_new is called once per derived tuple, so rebuilding the
        # disjunction each time dominates dedup cost on wide keys.
        self._disjoined: Dict[Tuple[Term, ...], Condition] = {}

    def is_new(
        self,
        key: Tuple[Term, ...],
        condition: Condition,
        solver: Optional[ConditionSolver],
        precheck: Optional["ConditionPrecheck"] = None,
        stats: Optional[EvalStats] = None,
    ) -> bool:
        existing = self._by_key.get(key)
        if existing is None:
            return True
        if condition in existing:
            return False
        if any(e is TRUE for e in existing):
            return False
        if solver is None:
            return True
        # Canonical membership: equivalent-by-rewriting conditions skip
        # the implication solver entirely (sound — the solver's verdict
        # for them is necessarily TRUE).
        if solver.memo is not None and solver.canonical(condition) in self._canon_by_key[key]:
            return False
        # Three-valued dedup: only a *definite* "implied by what's
        # recorded" may skip the insert.  UNKNOWN (budget exhausted)
        # treats the tuple as new — recording a redundant condition is
        # sound (possible worlds are unchanged), dropping a novel one
        # would lose worlds.
        disjoined = self._disjoined.get(key)
        if disjoined is None:
            disjoined = disjoin(existing)
            self._disjoined[key] = disjoined
        if precheck is not None:
            # The static classifier's entailment semi-decision is one-sided
            # and provably agrees with the solver: True ⇒ the solver's
            # verdict is TRUE (drop), False ⇒ it is FALSE (record).  Only
            # None falls through to a (budgeted, counted) solver call.
            hint = precheck.implies_hint(condition, disjoined)
            if hint is not None:
                if stats is not None:
                    stats.extra["static_implies_hits"] = (
                        stats.extra.get("static_implies_hits", 0) + 1
                    )
                return not hint
        return solver.implies_verdict(condition, disjoined) is not Trivalent.TRUE

    def record(
        self,
        key: Tuple[Term, ...],
        condition: Condition,
        solver: Optional[ConditionSolver] = None,
    ) -> None:
        self._by_key.setdefault(key, []).append(condition)
        self._disjoined.pop(key, None)
        canon = self._canon_by_key.setdefault(key, set())
        if solver is not None and solver.memo is not None:
            canon.add(solver.canonical(condition))


class FaureEvaluator:
    """Evaluates fauré-log programs over a c-table database.

    Parameters
    ----------
    database:
        The EDB: stored c-tables the program's body may reference.
    solver:
        Condition solver used for pruning and dedup.  ``None`` disables
        both (an ablation mode; recursion may then fail to terminate on
        cyclic inputs).
    max_iterations:
        Safety valve for the fixpoint loop (per stratum); ``None`` means
        unbounded.
    prune:
        When False, unsatisfiable-condition tuples are kept (ablation of
        the paper's step 3); dedup still uses the solver if present.
    governor:
        Resource governor for the fixpoint loop; defaults to the
        solver's own governor.  Under ``degrade`` policy a mid-iteration
        :class:`BudgetExceeded` stops the loop cleanly: the evaluator
        returns what was derived so far, sets :attr:`partial`, and
        counts the event in ``stats.partial_results`` (a partial
        fixpoint under-approximates, so downstream verdicts report
        inconclusive rather than "holds").
    """

    def __init__(
        self,
        database: Database,
        solver: Optional[ConditionSolver] = None,
        max_iterations: Optional[int] = None,
        prune: bool = True,
        storage: Optional[Storage] = None,
        record_provenance: bool = False,
        governor: Optional[Governor] = None,
        precheck: Optional["ConditionPrecheck"] = None,
        inactive_rules: Optional[Iterable[int]] = None,
    ):
        self.database = database
        self.solver = solver
        self.max_iterations = max_iterations
        self.prune = prune and solver is not None
        self.stats = EvalStats()
        self.record_provenance = record_provenance
        self.governor = governor if governor is not None else (
            solver.governor if solver is not None else None
        )
        #: Static optimizer hooks (``--optimize``): a solver-free
        #: precheck for per-tuple sat/entailment, and rule indices the
        #: optimizer proved can never contribute (kept in the program so
        #: their head tables still materialize empty).  Both change the
        #: solver *call sequence*, so they stand down when the governor
        #: carries an armed fault injector — deterministic chaos
        #: schedules are call-indexed and must see the original sequence.
        self.precheck = precheck
        self.inactive_rules: FrozenSet[int] = frozenset(inactive_rules or ())
        if self.governor is not None and self.governor.injector is not None:
            self.precheck = None
            self.inactive_rules = frozenset()
        #: True when the last evaluation was cut short by a budget.
        self.partial = False
        #: (predicate, data part, condition, rule label) per derived tuple,
        #: in derivation order — populated when record_provenance is set.
        self.provenance: List[Tuple[str, Tuple[Term, ...], Condition, Optional[str]]] = []
        if storage is not None and storage.db is not database:
            raise ValueError("storage must wrap the same database")
        self._storage = storage

    # -- solver accounting ---------------------------------------------------

    def _timed_sat_verdict(self, condition: Condition) -> Verdict:
        start = phase_clock()
        try:
            return self.solver.sat_verdict(condition)
        finally:
            self.stats.solver_seconds += phase_clock() - start

    def _keep(self, condition: Condition) -> bool:
        if isinstance(condition, FalseCond):
            self.stats.tuples_pruned += 1
            return False
        if not self.prune:
            return True
        if self.precheck is not None:
            # Statically classified conditions skip the solver: True ⇒
            # the solver would answer SAT (keep), False ⇒ UNSAT (prune).
            hint = self.precheck.sat_hint(condition)
            if hint is False:
                self.stats.tuples_pruned += 1
                self.stats.extra["static_unsat_hits"] = (
                    self.stats.extra.get("static_unsat_hits", 0) + 1
                )
                return False
            if hint is True:
                self.stats.extra["static_sat_hits"] = (
                    self.stats.extra.get("static_sat_hits", 0) + 1
                )
                return True
        verdict = self._timed_sat_verdict(condition)
        if verdict is Verdict.UNSAT:
            self.stats.tuples_pruned += 1
            return False
        if verdict is Verdict.UNKNOWN:
            # Keep-on-UNKNOWN: sound, the table is merely less simplified.
            self.stats.unknown_kept += 1
        return True

    # -- main entry ---------------------------------------------------------------

    def evaluate(self, program: Program) -> Database:
        """Run the program to fixpoint; returns the IDB as a database.

        The result database contains one c-table per IDB predicate
        (empty predicates yield empty tables when their arity is known).
        """
        wall_start = phase_clock()
        solver_before = self.stats.solver_seconds
        self.partial = False
        if self.governor is not None:
            self.governor.ensure_started()
        try:
            result = self._evaluate_inner(program)
        finally:
            wall = phase_clock() - wall_start
            solver_delta = self.stats.solver_seconds - solver_before
            self.stats.sql_seconds += max(0.0, wall - solver_delta)
        return result

    def _evaluate_inner(self, program: Program) -> Database:
        edb_names = set(self.database.names())
        idb = program.idb_predicates()
        clash = idb & edb_names
        if clash:
            raise ProgramError(
                f"IDB predicates shadow stored tables: {sorted(clash)}"
            )

        # Working storage: EDB tables plus IDB tables as they are built.
        # A caller-supplied storage lets repeated evaluations over the
        # same database reuse its (lazily built) indexes.
        working = self._storage if self._storage is not None else Storage(self.database)
        derived = Database()
        indexes: Dict[str, _ConditionIndex] = {}
        tables: Dict[str, CTable] = {}

        def ensure_table(predicate: str, arity: int) -> CTable:
            table = tables.get(predicate)
            if table is None:
                schema = [f"c{i}" for i in range(arity)]
                table = CTable(predicate, schema)
                tables[predicate] = table
                indexes[predicate] = _ConditionIndex()
                self.database.add_table(table)  # visible to body matching
            return table

        added_to_db: List[str] = []
        try:
            for predicate in idb:
                arity = program.arity_of(predicate)
                if arity is not None and predicate not in tables:
                    ensure_table(predicate, arity)
                    added_to_db.append(predicate)

            for stratum in stratify(program):
                self._run_stratum(program, stratum, working, tables, indexes)
        except BudgetExceeded:
            # Mid-iteration exhaustion: in degrade mode terminate with a
            # flagged partial result (the finally below restores the EDB
            # either way, so no state is corrupted); otherwise propagate.
            if self.governor is None or not self.governor.degrade:
                raise
            self.partial = True
            self.stats.partial_results += 1
        finally:
            for name in added_to_db:
                self.database.drop_table(name)
                working.invalidate(name)

        for predicate, table in tables.items():
            derived.add_table(table)
        return derived

    # -- stratum fixpoint -------------------------------------------------------

    def _run_stratum(
        self,
        program: Program,
        stratum: FrozenSet[str],
        working: Storage,
        tables: Dict[str, CTable],
        indexes: Dict[str, _ConditionIndex],
    ) -> None:
        rules = [
            r
            for index, r in enumerate(program)
            if r.head.predicate in stratum and index not in self.inactive_rules
        ]

        def insert(rule: Rule, head_values: Tuple[Term, ...], condition: Condition) -> bool:
            predicate = rule.head.predicate
            table = tables[predicate]
            index = indexes[predicate]
            if not self._keep(condition):
                return False
            start = phase_clock()
            try:
                new = index.is_new(
                    head_values, condition, self.solver,
                    precheck=self.precheck, stats=self.stats,
                )
            finally:
                self.stats.solver_seconds += phase_clock() - start
            if not new:
                return False
            index.record(head_values, condition, self.solver)
            working.indexed(predicate).add(list(head_values), condition)
            self.stats.tuples_generated += 1
            if self.record_provenance:
                self.provenance.append(
                    (predicate, head_values, condition, rule.label)
                )
            return True

        # Round 0: fire every rule on the full database.
        delta: Dict[str, CTable] = {p: CTable(p, tables[p].schema) for p in stratum}
        for rule in rules:
            if self.governor is not None:
                self.governor.check_deadline()
            for bindings, condition in derive(rule, working):
                values = build_head(rule, bindings)
                if insert(rule, values, condition):
                    delta[rule.head.predicate].add(list(values), condition)
        self.stats.iterations += 1

        # Semi-naive rounds: re-fire only rules that read this stratum,
        # once per in-stratum positive literal bound to the delta.
        iteration = 1
        while any(len(t) for t in delta.values()):
            if self.governor is not None:
                # Cooperative mid-iteration cancellation point: a blown
                # deadline stops the fixpoint between rounds, never
                # mid-insert, so tables stay internally consistent.
                self.governor.check_deadline()
            if self.max_iterations is not None and iteration > self.max_iterations:
                raise ProgramError(
                    f"fixpoint exceeded {self.max_iterations} iterations"
                )
            delta_indexed = {
                name: IndexedTable(table) for name, table in delta.items() if len(table)
            }
            next_delta: Dict[str, CTable] = {
                p: CTable(p, tables[p].schema) for p in stratum
            }
            for rule in rules:
                positives = list(rule.positive_literals())
                for position, literal in enumerate(positives):
                    if literal.predicate not in delta_indexed:
                        continue
                    for bindings, condition in derive(
                        rule,
                        working,
                        delta_override=delta_indexed,
                        delta_position=position,
                    ):
                        values = build_head(rule, bindings)
                        if insert(rule, values, condition):
                            next_delta[rule.head.predicate].add(list(values), condition)
            delta = next_delta
            iteration += 1
            self.stats.iterations += 1


def evaluate(
    program: Program,
    database: Database,
    solver: Optional[ConditionSolver] = None,
    stats: Optional[EvalStats] = None,
    max_iterations: Optional[int] = None,
    prune: bool = True,
    governor: Optional[Governor] = None,
    precheck: Optional["ConditionPrecheck"] = None,
    inactive_rules: Optional[Iterable[int]] = None,
) -> Database:
    """One-shot convenience wrapper around :class:`FaureEvaluator`.

    Partial-result status (budget-interrupted fixpoint) is surfaced via
    ``stats.partial_results`` when a ``stats`` object is supplied.
    """
    evaluator = FaureEvaluator(
        database,
        solver=solver,
        max_iterations=max_iterations,
        prune=prune,
        governor=governor,
        precheck=precheck,
        inactive_rules=inactive_rules,
    )
    result = evaluator.evaluate(program)
    if stats is not None:
        stats.add(evaluator.stats)
    return result
