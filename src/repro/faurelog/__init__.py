"""fauré-log: the datalog extension for c-tables (paper, §3).

The deductive heart of fauré: programs over c-tables with the c-valuation
``v^C``, stratified recursion, c-table negation, a textual syntax,
program containment by reduction to evaluation, and the Levy–Sagiv update
rewrite.
"""

from .analyze import Lint, lint_program
from .answers import AnswerSet, classify_answers
from .ast import Atom, BodyItem, Literal, Program, ProgramError, Rule
from .containment import (
    ConjunctiveQuery,
    ContainmentResult,
    FrozenQuery,
    contains,
    equivalent_constraints,
    freeze,
    unfold,
)
from .evaluation import FaureEvaluator, evaluate
from .parser import ParseError, parse_program, parse_rule
from .printer import format_condition, format_program, format_rule, format_term
from .incremental import IncrementalEvaluator
from .specialize import solve_goal, specialize
from .sqlcompile import SqlProgramEvaluator, compile_rule
from .rewrite import Deletion, Insertion, Update, apply_update, rewrite_constraint
from .stratify import dependency_graph, is_recursive, stratify
from .valuation import Bindings, build_head, derive, negation_condition, unify_value

__all__ = [
    "Lint",
    "lint_program",
    "AnswerSet",
    "classify_answers",
    "Atom",
    "BodyItem",
    "Literal",
    "Program",
    "ProgramError",
    "Rule",
    "ConjunctiveQuery",
    "ContainmentResult",
    "FrozenQuery",
    "contains",
    "equivalent_constraints",
    "freeze",
    "unfold",
    "FaureEvaluator",
    "evaluate",
    "ParseError",
    "parse_program",
    "parse_rule",
    "format_condition",
    "format_program",
    "format_rule",
    "format_term",
    "solve_goal",
    "specialize",
    "IncrementalEvaluator",
    "SqlProgramEvaluator",
    "compile_rule",
    "Deletion",
    "Insertion",
    "Update",
    "apply_update",
    "rewrite_constraint",
    "dependency_graph",
    "is_recursive",
    "stratify",
    "Bindings",
    "build_head",
    "derive",
    "negation_condition",
    "unify_value",
]
