"""Program containment via reduction to fauré-log evaluation (§5).

The paper's category-(i) verification test checks whether known-good
constraints *subsume* a target constraint — datalog program containment,
normally NP-complete.  Fauré's trick: rewrite the containee's rules into
variable-free form (program variables become fresh c-variables), treat
the rewritten body as a canonical c-table database, and *evaluate* the
container on it.  Containment holds when the container derives ``panic``
under a condition entailed by the containee's witness condition θ.

Implementation notes beyond the paper's sketch:

* **Unfolding.**  Constraints may define ``panic`` through intermediate
  predicates (Listing 3's ``Vt``/``Vs``), and — after an update rewrite —
  may *negate* derived predicates (Listing 4's ``Lb2``).  Non-recursive
  programs are unfolded into a union of conjunctive queries over EDB
  predicates.  Negated IDB literals are expanded by De Morgan (each
  defining rule must be falsified; one body element per rule is chosen
  to falsify, producing a cross-product of disjuncts); this requires the
  negated predicate's rules to have no existential body variables — the
  exact shape produced by the update rewrite.

* **Column domains.**  Frozen and generic c-variables inherit the
  attribute domain of the column they stand for.  This is load-bearing:
  the paper's ``T2' ⊆ {C_lb, C_s}`` holds only because the enterprise's
  server attribute ranges over {CS, GS}.

* **Generic tuples.**  A world satisfying the containee's body may hold
  *additional* rows in any EDB relation.  Each relation in the canonical
  database therefore receives *generic* tuples: fresh c-variables per
  column guarded by a fresh {0,1} existence flag, carrying the
  complement of the containee's negated-literal patterns (rows the
  containee's body provably excludes).  The coverage implication must
  hold for every assignment of generic values and flags — i.e. in every
  extension world.  The per-relation generic count defaults to the
  containers' negated-literal total (the adversary budget needed to
  falsify their negations); within that budget the test is sound, and it
  is conservative otherwise (it can answer "not shown", never a wrong
  "contained").

The result is tri-state in spirit: ``contained=True`` is definitive for
the supported fragment; ``False`` means "not shown" — the
relative-complete "I don't know".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ctable.condition import Comparison, Condition, FalseCond, TRUE, TrueCond, conjoin, disjoin
from ..ctable.table import CTable, Database
from ..ctable.terms import Constant, CVariable, Term, Variable
from ..solver.domains import Domain, DomainMap, FiniteDomain
from ..solver.interface import ConditionSolver
from .ast import Atom, Literal, Program, ProgramError, Rule
from .evaluation import evaluate
from .stratify import is_recursive

__all__ = [
    "ConjunctiveQuery",
    "unfold",
    "freeze",
    "FrozenQuery",
    "ContainmentResult",
    "contains",
    "equivalent_constraints",
]


@dataclass(frozen=True)
class ConjunctiveQuery:
    """One disjunct of an unfolded constraint: EDB literals + comparisons."""

    positives: Tuple[Literal, ...]
    negatives: Tuple[Literal, ...]
    comparisons: Tuple[Condition, ...]

    def predicates(self) -> Set[str]:
        return {l.predicate for l in self.positives} | {
            l.predicate for l in self.negatives
        }

    def __str__(self) -> str:
        parts = [str(l) for l in self.positives]
        parts += [str(l) for l in self.negatives]
        parts += [str(c) for c in self.comparisons]
        return ", ".join(parts)


class _Renamer:
    """Fresh-symbol renaming so unfolded rule copies never collide."""

    def __init__(self) -> None:
        self.counter = itertools.count()

    def fresh_mapping(self, rule: Rule) -> Dict[Term, Term]:
        mapping: Dict[Term, Term] = {}
        n = next(self.counter)
        symbols: Set[Term] = set(rule.variables()) | set(rule.bindable_cvariables())
        for t in rule.head.terms:
            if isinstance(t, (Variable, CVariable)):
                symbols.add(t)
        for sym in symbols:
            if isinstance(sym, Variable):
                mapping[sym] = Variable(f"{sym.name}_u{n}")
            else:
                mapping[sym] = CVariable(f"{sym.name}_u{n}")
        return mapping


def _substitute_atom(atom: Atom, mapping: Dict[Term, Term]) -> Atom:
    return Atom(atom.predicate, [mapping.get(t, t) for t in atom.terms])


def _substitute_literal(literal: Literal, mapping: Dict[Term, Term]) -> Literal:
    return Literal(
        _substitute_atom(literal.atom, mapping),
        negated=literal.negated,
        condition_var=literal.condition_var,
        annotation=literal.annotation.substitute(mapping),
    )


def _rule_has_existentials(rule: Rule) -> bool:
    """Body symbols not occurring in the head (breaks ¬IDB expansion)."""
    head_syms = {
        t for t in rule.head.terms if isinstance(t, (Variable, CVariable))
    }
    for lit in rule.literals():
        for t in lit.atom.terms:
            if isinstance(t, (Variable, CVariable)) and t not in head_syms:
                return True
    return False


def unfold(program: Program, target: str = "panic") -> List[ConjunctiveQuery]:
    """Expand a non-recursive constraint into a union of CQs over EDB.

    Positive IDB literals resolve against their defining rules (renamed
    apart, heads unified with calls).  Negated IDB literals expand by De
    Morgan over their defining rules (no-existential shape required).
    Literal annotations are normalized into comparisons.
    """
    if is_recursive(program):
        raise ProgramError("cannot unfold a recursive program")
    idb = program.idb_predicates()
    renamer = _Renamer()
    results: List[ConjunctiveQuery] = []

    def unify_call(
        call_terms: Sequence[Term], head_terms: Sequence[Term]
    ) -> Optional[Tuple[Dict[Term, Term], List[Condition]]]:
        """Unify a call with a renamed head.

        Returns (substitution over symbols, residual equations) — the
        residuals arise when a head constant meets a call variable and
        appear as conditions rather than bindings (needed under
        negation).  ``None`` on definite constant clash.
        """
        subst: Dict[Term, Term] = {}
        residual: List[Condition] = []

        def walk(t: Term) -> Term:
            seen = set()
            while t in subst and t not in seen:
                seen.add(t)
                t = subst[t]
            return t

        for call_t, head_t in zip(call_terms, head_terms):
            a, b = walk(call_t), walk(head_t)
            if a == b:
                continue
            if isinstance(a, Constant) and isinstance(b, Constant):
                return None
            if isinstance(b, (Variable, CVariable)):
                subst[b] = a
            elif isinstance(a, (Variable, CVariable)):
                # Head is a constant, call side is a symbol: residual.
                residual.append(Comparison(a, "=", b).constant_fold())
            else:  # pragma: no cover - both constants handled above
                return None
        flat = {k: walk(k) for k in subst}
        return flat, residual

    def expand_negated_idb(literal: Literal) -> Optional[List[List[object]]]:
        """DNF choices falsifying every rule of a negated IDB predicate.

        Returns a list of item-lists (each item a Literal or Condition);
        the caller must branch on them.  ``None`` means the negation is
        unsatisfiable (some rule matches unconditionally).
        """
        if literal.annotation is not TRUE:
            raise ProgramError(
                f"annotation on negated IDB literal {literal} is not supported"
            )
        all_choice_sets: List[List[List[object]]] = []
        for rule in program.rules_for(literal.predicate):
            if _rule_has_existentials(rule):
                raise ProgramError(
                    f"cannot negate {literal.predicate}: rule {rule} has "
                    "existential body variables"
                )
            mapping = renamer.fresh_mapping(rule)
            head = _substitute_atom(rule.head, mapping)
            unified = unify_call(literal.atom.terms, head.terms)
            if unified is None:
                # This rule can never produce a matching head: nothing to
                # falsify; it contributes the no-op choice.
                all_choice_sets.append([[]])
                continue
            subst, residual = unified
            elements: List[object] = [c for c in residual if not isinstance(c, TrueCond)]
            if any(isinstance(c, FalseCond) for c in residual):
                # Residual equation definitely false: rule can't match.
                all_choice_sets.append([[]])
                continue
            for item in rule.body:
                if isinstance(item, Literal):
                    lit = _substitute_literal(_substitute_literal(item, mapping), subst)
                    if lit.annotation is not TRUE:
                        elements.append(lit.annotation)
                        lit = Literal(lit.atom, negated=lit.negated)
                    elements.append(lit)
                else:
                    cond = item.substitute(mapping).substitute(subst)
                    if isinstance(cond, FalseCond):
                        elements = None  # rule body already false
                        break
                    if not isinstance(cond, TrueCond):
                        elements.append(cond)
            if elements is None:
                all_choice_sets.append([[]])
                continue
            if not elements:
                # Rule fires unconditionally on the call: ¬P(u) is false.
                return None
            choices: List[List[object]] = []
            for element in elements:
                if isinstance(element, Condition):
                    neg = element.negate()
                    if isinstance(neg, FalseCond):
                        continue
                    choices.append([neg])
                else:
                    flipped = Literal(element.atom, negated=not element.negated)
                    choices.append([flipped])
            if not choices:
                return None
            all_choice_sets.append(choices)
        # Cross product over rules.
        combos: List[List[object]] = [[]]
        for choices in all_choice_sets:
            combos = [base + pick for base in combos for pick in choices]
        return combos

    def expand(
        pending: List[object],
        positives: List[Literal],
        negatives: List[Literal],
        comparisons: List[Condition],
    ) -> None:
        if not pending:
            results.append(
                ConjunctiveQuery(tuple(positives), tuple(negatives), tuple(comparisons))
            )
            return
        item, rest = pending[0], pending[1:]
        if isinstance(item, Condition):
            if isinstance(item, FalseCond):
                return
            if isinstance(item, TrueCond):
                expand(rest, positives, negatives, comparisons)
            else:
                expand(rest, positives, negatives, comparisons + [item])
            return
        literal: Literal = item
        if literal.predicate not in idb:
            extra_cmps: List[Condition] = []
            norm = literal
            if literal.annotation is not TRUE:
                if literal.negated:
                    raise ProgramError(
                        f"annotation on negated literal {literal} is not supported "
                        "in constraints"
                    )
                extra_cmps.append(literal.annotation)
                norm = Literal(literal.atom, negated=literal.negated)
            if norm.negated:
                expand(rest, positives, negatives + [norm], comparisons + extra_cmps)
            else:
                expand(rest, positives + [norm], negatives, comparisons + extra_cmps)
            return
        if literal.negated:
            combos = expand_negated_idb(literal)
            if combos is None:
                return  # negation unsatisfiable: branch dies
            for combo in combos:
                expand(list(combo) + list(rest), positives, negatives, comparisons)
            return
        # Positive IDB literal: resolve against each defining rule.
        call_cmps: List[Condition] = []
        call = literal
        if literal.annotation is not TRUE:
            call_cmps.append(literal.annotation)
            call = Literal(literal.atom, negated=False)
        for rule in program.rules_for(call.predicate):
            mapping = renamer.fresh_mapping(rule)
            head = _substitute_atom(rule.head, mapping)
            unified = unify_call(call.atom.terms, head.terms)
            if unified is None:
                continue
            subst, residual = unified
            new_items: List[object] = list(residual)
            for body_item in rule.body:
                if isinstance(body_item, Literal):
                    new_items.append(
                        _substitute_literal(
                            _substitute_literal(body_item, mapping), subst
                        )
                    )
                else:
                    new_items.append(body_item.substitute(mapping).substitute(subst))
            # The unifier may bind symbols already present in the outer
            # query: apply it everywhere.
            pos2 = [_substitute_literal(l, subst) for l in positives]
            neg2 = [_substitute_literal(l, subst) for l in negatives]
            cmps2 = [c.substitute(subst) for c in comparisons + call_cmps]
            rest2 = [
                _substitute_literal(i, subst)
                if isinstance(i, Literal)
                else i.substitute(subst)
                for i in rest
            ]
            expand(new_items + rest2, pos2, neg2, cmps2)

    for rule in program.rules_for(target):
        mapping = renamer.fresh_mapping(rule)
        pending: List[object] = []
        for item in rule.body:
            if isinstance(item, Literal):
                pending.append(_substitute_literal(item, mapping))
            else:
                pending.append(item.substitute(mapping))
        expand(pending, [], [], [])
    return results


@dataclass
class FrozenQuery:
    """The canonical c-table database of one containee disjunct."""

    database: Database
    theta: Condition
    frozen_vars: Dict[Term, CVariable] = field(default_factory=dict)
    var_domains: Dict[CVariable, Domain] = field(default_factory=dict)
    generic_flags: List[CVariable] = field(default_factory=list)


def freeze(
    cq: ConjunctiveQuery,
    container_programs: Sequence[Program],
    schemas: Optional[Dict[str, Sequence[str]]] = None,
    column_domains: Optional[Dict[str, Domain]] = None,
    generic_rows: Optional[int] = None,
    tag: str = "f",
) -> FrozenQuery:
    """Build the canonical database for one disjunct.

    ``schemas`` names the columns of the EDB predicates; frozen and
    generic c-variables inherit ``column_domains[column]`` when declared.
    ``generic_rows`` overrides the per-relation generic-tuple count
    (default: the containers' negated-literal total; 0 reproduces the
    paper's plain reduction).
    """
    counter = itertools.count()
    frozen: Dict[Term, CVariable] = {}
    var_domains: Dict[CVariable, Domain] = {}
    schemas = schemas or {}
    column_domains = column_domains or {}

    # Relations needed: everything the containee or containers mention.
    predicates: Dict[str, int] = {}
    for lit in list(cq.positives) + list(cq.negatives):
        predicates[lit.predicate] = lit.atom.arity
    for prog in container_programs:
        for pred in prog.edb_predicates():
            arity = prog.arity_of(pred)
            if arity is not None:
                predicates.setdefault(pred, arity)

    def schema_for(pred: str) -> List[str]:
        return list(schemas.get(pred, [f"c{i}" for i in range(predicates[pred])]))

    def freeze_term(t: Term, pred: str, position: int) -> Term:
        if isinstance(t, Constant):
            return t
        got = frozen.get(t)
        if got is None:
            got = CVariable(f"{tag}{next(counter)}")
            frozen[t] = got
            column = schema_for(pred)[position]
            if column in column_domains:
                var_domains[got] = column_domains[column]
        return got

    if generic_rows is None:
        generic_rows = sum(
            sum(1 for _ in rule.negative_literals())
            for prog in container_programs
            for rule in prog
        )

    db = Database()
    tables: Dict[str, CTable] = {}
    for pred in predicates:
        tables[pred] = db.create_table(pred, schema_for(pred))

    theta_parts: List[Condition] = []
    for lit in cq.positives:
        values = [
            freeze_term(t, lit.predicate, i) for i, t in enumerate(lit.atom.terms)
        ]
        tables[lit.predicate].add(values)

    for cmp_cond in cq.comparisons:
        theta_parts.append(cmp_cond.substitute(dict(frozen)))

    exclusions: Dict[str, List[List[Term]]] = {}
    for lit in cq.negatives:
        values = [
            freeze_term(t, lit.predicate, i) for i, t in enumerate(lit.atom.terms)
        ]
        exclusions.setdefault(lit.predicate, []).append(values)

    flags: List[CVariable] = []
    for pred, arity in predicates.items():
        positive_rows = list(tables[pred])
        for row_index in range(generic_rows):
            gvars: List[CVariable] = []
            for i in range(arity):
                gv = CVariable(f"{tag}g_{pred}_{row_index}_{i}")
                gvars.append(gv)
                column = schema_for(pred)[i]
                if column in column_domains:
                    var_domains[gv] = column_domains[column]
            flag = CVariable(f"{tag}e_{pred}_{row_index}")
            flags.append(flag)
            parts: List[Condition] = [Comparison(flag, "=", Constant(1))]
            for pattern in exclusions.get(pred, ()):
                eqs = [
                    Comparison(g, "=", p).constant_fold()
                    for g, p in zip(gvars, pattern)
                ]
                parts.append(conjoin(eqs).negate())
            tables[pred].add(gvars, conjoin(parts))
        # Positive facts must not match the containee's negations either:
        # that constrains the witness worlds, so it lands in theta.
        for pattern in exclusions.get(pred, ()):
            for tup in positive_rows:
                eqs = [
                    Comparison(v, "=", p).constant_fold()
                    for v, p in zip(tup.values, pattern)
                ]
                clash = conjoin(eqs + [tup.condition])
                theta_parts.append(clash.negate())

    return FrozenQuery(
        database=db,
        theta=conjoin(theta_parts),
        frozen_vars=dict(frozen),
        var_domains=var_domains,
        generic_flags=flags,
    )


@dataclass
class ContainmentResult:
    """Outcome of a containment test.

    ``contained`` True is definitive; False means "not shown" (the
    relative-complete *unknown*, to be retried with more information).
    ``per_disjunct`` records, for each containee disjunct, whether it was
    covered and under which container panic condition.
    """

    contained: bool
    per_disjunct: List[Tuple[ConjunctiveQuery, bool, Condition]] = field(
        default_factory=list
    )

    def __bool__(self) -> bool:
        return self.contained


def contains(
    containee: Program,
    containers: Sequence[Program],
    solver: ConditionSolver,
    schemas: Optional[Dict[str, Sequence[str]]] = None,
    column_domains: Optional[Dict[str, Domain]] = None,
    target: str = "panic",
    generic_rows: Optional[int] = None,
) -> ContainmentResult:
    """Does every panic of ``containee`` imply some container panic?

    For each disjunct of the unfolded containee: freeze, evaluate every
    container on the canonical database, and check that the disjunct's
    witness condition θ entails the disjunction of derived panic
    conditions.  Vacuous disjuncts (θ unsatisfiable) are trivially
    covered.
    """
    disjuncts = unfold(containee, target=target)
    per: List[Tuple[ConjunctiveQuery, bool, Condition]] = []
    all_ok = True
    for cq in disjuncts:
        frozen = freeze(
            cq,
            containers,
            schemas=schemas,
            column_domains=column_domains,
            generic_rows=generic_rows,
        )
        local_domains = solver.domains.copy()
        for var, domain in frozen.var_domains.items():
            local_domains.declare(var, domain)
        for flag in frozen.generic_flags:
            local_domains.declare(flag, FiniteDomain([0, 1]))
        local_solver = solver.with_domains(local_domains)
        if not local_solver.is_satisfiable(frozen.theta):
            per.append((cq, True, TRUE))
            continue
        panic_conditions: List[Condition] = []
        for prog in containers:
            result = evaluate(prog, frozen.database, solver=local_solver)
            if target in result:
                for tup in result.table(target):
                    # Generic-row negations often contribute tautological
                    # conjuncts; simplifying keeps the coverage
                    # implication small.
                    panic_conditions.append(local_solver.simplify(tup.condition))
        covered = bool(panic_conditions) and (
            # cheap sufficient pass: a single disjunct may already cover
            any(
                local_solver.implies(frozen.theta, cond)
                for cond in panic_conditions
            )
            or local_solver.implies(frozen.theta, disjoin(panic_conditions))
        )
        per.append(
            (cq, covered, disjoin(panic_conditions) if panic_conditions else TRUE)
        )
        if not covered:
            all_ok = False
    return ContainmentResult(contained=all_ok, per_disjunct=per)


def equivalent_constraints(
    a: Program,
    b: Program,
    solver: ConditionSolver,
    schemas: Optional[Dict[str, Sequence[str]]] = None,
    column_domains: Optional[Dict[str, Domain]] = None,
    target: str = "panic",
    generic_rows: Optional[int] = None,
) -> bool:
    """Mutual containment: the two constraints panic on the same worlds.

    Like :func:`contains`, a True answer is definitive for the supported
    fragment; False means "not shown equivalent".
    """
    forward = contains(
        a, [b], solver, schemas=schemas, column_domains=column_domains,
        target=target, generic_rows=generic_rows,
    )
    if not forward.contained:
        return False
    backward = contains(
        b, [a], solver, schemas=schemas, column_domains=column_domains,
        target=target, generic_rows=generic_rows,
    )
    return backward.contained
