"""Static analysis (linting) of fauré-log programs.

The paper leans on "static analysis readily available in pure datalog";
beyond stratification and containment, this module provides the
workaday checks that catch real mistakes in constraint files before
they silently verify nothing:

* **singleton variables** — a program variable used exactly once is
  usually a typo (it matches anything);
* **undefined predicates** — referenced but neither defined by a rule
  nor declared as a stored relation;
* **unused predicates** — defined but unreachable from any output;
* **duplicate rules** — identical rules add nothing;
* **degenerate comparisons** — conditions that fold to TRUE/FALSE make a
  rule vacuous or dead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from ..ctable.condition import FalseCond, TrueCond
from ..ctable.terms import Variable
from .ast import Literal, Program, Rule
from .stratify import dependency_graph

__all__ = ["Lint", "lint_program"]


@dataclass(frozen=True)
class Lint:
    """One finding: severity ('warning'|'error'), rule context, message."""

    severity: str
    message: str
    rule: Optional[str] = None

    def __str__(self) -> str:
        where = f" [{self.rule}]" if self.rule else ""
        return f"{self.severity}{where}: {self.message}"


def _rule_name(rule: Rule) -> str:
    return rule.label or str(rule.head)


def lint_program(
    program: Program,
    edb: Iterable[str] = (),
    outputs: Iterable[str] = (),
) -> List[Lint]:
    """Run all checks; ``edb`` declares stored relations, ``outputs`` the
    predicates whose reachability matters (default: all rule heads that
    nothing else consumes)."""
    findings: List[Lint] = []
    edb_set = set(edb)
    idb = program.idb_predicates()

    # -- singleton variables --------------------------------------------
    for rule in program:
        counts: Dict[Variable, int] = {}
        for atom in [rule.head] + [l.atom for l in rule.literals()]:
            for term in atom.terms:
                if isinstance(term, Variable):
                    counts[term] = counts.get(term, 0) + 1
        for cond in rule.comparisons():
            for a in cond.atoms():
                for term in getattr(a, "lhs", None), getattr(a, "rhs", None):
                    if isinstance(term, Variable):
                        counts[term] = counts.get(term, 0) + 1
        for var, n in counts.items():
            if n == 1:
                findings.append(
                    Lint(
                        "warning",
                        f"variable {var} occurs only once (matches anything)",
                        _rule_name(rule),
                    )
                )

    # -- undefined predicates ---------------------------------------------
    for rule in program:
        for literal in rule.literals():
            pred = literal.predicate
            if pred not in idb and edb_set and pred not in edb_set:
                findings.append(
                    Lint(
                        "error",
                        f"predicate {pred} is neither defined nor a declared relation",
                        _rule_name(rule),
                    )
                )

    # -- unused predicates ----------------------------------------------------
    graph = dependency_graph(program)
    consumed: Set[str] = set()
    for rule in program:
        consumed |= rule.body_predicates()
    sinks = set(outputs) or (idb - consumed)
    reachable: Set[str] = set()
    frontier = list(sinks)
    while frontier:
        pred = frontier.pop()
        if pred in reachable:
            continue
        reachable.add(pred)
        for src, dst in graph.in_edges(pred):
            frontier.append(src)
    for pred in sorted(idb - reachable):
        findings.append(
            Lint("warning", f"predicate {pred} is never used by any output")
        )

    # -- duplicate rules -------------------------------------------------------
    seen: Dict = {}
    for rule in program:
        key = (rule.head, rule.body)
        if key in seen:
            findings.append(
                Lint(
                    "warning",
                    f"rule duplicates {seen[key]}",
                    _rule_name(rule),
                )
            )
        else:
            seen[key] = _rule_name(rule)

    # -- degenerate comparisons ----------------------------------------------------
    for rule in program:
        for cond in rule.comparisons():
            if isinstance(cond, TrueCond):
                findings.append(
                    Lint("warning", "comparison is always true", _rule_name(rule))
                )
            elif isinstance(cond, FalseCond):
                findings.append(
                    Lint("warning", "comparison is always false: rule can never fire",
                         _rule_name(rule))
                )
    return findings
