"""Static analysis (linting) of fauré-log programs — legacy facade.

The actual analyses live in :mod:`repro.analysis`: a pass manager runs
typed passes over the program and emits :class:`~repro.analysis.Diagnostic`
findings with stable ``F0xx`` codes, severities, and source spans.  This
module keeps the original flat API — :class:`Lint` records and
:func:`lint_program` — for callers that predate the pass framework; new
code should call :func:`repro.analysis.analyze_program` directly and get
codes and spans too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..analysis.manager import analyze_program
from .ast import Program

__all__ = ["Lint", "lint_program"]


@dataclass(frozen=True)
class Lint:
    """One finding: severity ('warning'|'error'|'info'), rule, message."""

    severity: str
    message: str
    rule: Optional[str] = None

    def __str__(self) -> str:
        where = f" [{self.rule}]" if self.rule else ""
        return f"{self.severity}{where}: {self.message}"


def lint_program(
    program: Program,
    edb: Iterable[str] = (),
    outputs: Iterable[str] = (),
) -> List[Lint]:
    """Run all checks; ``edb`` declares stored relations, ``outputs`` the
    predicates whose reachability matters (default: all rule heads that
    nothing else consumes).

    Thin wrapper over :func:`repro.analysis.analyze_program` that drops
    codes and spans to preserve the original return type.
    """
    findings = analyze_program(program, edb=edb, outputs=outputs)
    return [
        Lint(d.severity.value, d.message, d.rule)
        for d in findings
    ]
