"""Incremental maintenance of fauré-log results under EDB growth.

§7 contrasts fauré with incremental verifiers (Jinjing, INCV) that
maintain results as the network changes.  The two compose: c-tables
absorb *anticipated* change (failures as conditions), and incremental
evaluation absorbs *unanticipated* monotone change — a new route
announcement, a new ACL row — without recomputing from scratch.

:class:`IncrementalEvaluator` evaluates a program once, then maintains
the IDB under

* :meth:`insert` — add a (possibly conditional, possibly partial) EDB
  fact and propagate via semi-naive rounds seeded from the delta;
* :meth:`weaken` — *widen* an existing fact's condition (e.g. a link
  once thought conditional turns out unconditional), which is also a
  monotone growth of the represented worlds.

Deletions are deliberately out of scope — the paper's answer to
retraction is to model it as a condition up front (a tuple that may
disappear carries a c-variable guard), after which "deletion" is just
assigning the guard, no recomputation needed.  Monotonicity is enforced:
programs whose results could shrink under EDB growth (any negation on a
path from the touched relation) are rejected.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..analysis.optimize import ConditionPrecheck

from ..ctable.condition import Condition, TRUE, disjoin
from ..ctable.table import CTable, Database
from ..ctable.terms import Term
from ..engine.stats import EvalStats
from ..engine.storage import IndexedTable, Storage
from ..solver.interface import ConditionSolver
from .ast import Program, ProgramError, Rule
from .evaluation import FaureEvaluator
from .stratify import dependency_graph, stratify
from .valuation import build_head, derive

__all__ = ["IncrementalEvaluator"]


class IncrementalEvaluator:
    """Evaluate once, then maintain under monotone EDB changes."""

    def __init__(
        self,
        program: Program,
        database: Database,
        solver: Optional[ConditionSolver] = None,
        precheck: Optional["ConditionPrecheck"] = None,
        restored_idb: Optional[Database] = None,
    ):
        self.program = program
        self.database = database
        self.solver = solver
        self.stats = EvalStats()
        # Static pre-admission impact slicing (``--optimize``): rules are
        # indexed by the predicates their bodies read, so a delta only
        # visits its reader rules.  Iteration order (program order per
        # round) is unchanged — a non-reader rule can never match the
        # delta, so skipping it is behavior-neutral under any governor.
        self.precheck = precheck
        if (
            solver is not None
            and solver.governor is not None
            and solver.governor.injector is not None
        ):
            # Call-indexed fault schedules must see the original sequence.
            self.precheck = None
        self._readers: Dict[str, List[Rule]] = {}
        for rule in program:
            for literal in rule.positive_literals():
                bucket = self._readers.setdefault(literal.predicate, [])
                if not bucket or bucket[-1] is not rule:
                    bucket.append(rule)
        self._graph = dependency_graph(program)
        self._strata = stratify(program)
        self._stratum_of: Dict[str, int] = {}
        for i, stratum in enumerate(self._strata):
            for pred in stratum:
                self._stratum_of[pred] = i
        if restored_idb is not None:
            # Snapshot restore (serve-mode compaction / replica bootstrap):
            # the IDB tables were serialized row-for-row from a state this
            # same class produced, so adopting them verbatim — and then
            # rebuilding the indexes and condition bookkeeping below from
            # their insertion order — reproduces that state byte-exactly
            # without re-running the initial evaluation.
            self.result = restored_idb
        else:
            # initial full evaluation
            evaluator = FaureEvaluator(database, solver=solver, precheck=self.precheck)
            self.result = evaluator.evaluate(program)
            self.stats.add(evaluator.stats)
        # combined EDB+IDB view used for incremental matching
        self._combined = Database(
            [t for t in database] + [t for t in self.result]
        )
        self._storage = Storage(self._combined)
        # per-predicate condition bookkeeping for subsumption dedup
        self._conditions: Dict[str, Dict[Tuple[Term, ...], List[Condition]]] = {}
        for table in self.result:
            per = self._conditions.setdefault(table.name, {})
            for tup in table:
                per.setdefault(tup.data_key(), []).append(tup.condition)

    # -- monotonicity guard ----------------------------------------------

    def _affected_predicates(self, predicate: str) -> Set[str]:
        """IDB predicates downstream of the touched relation."""
        if predicate not in self._graph:
            return set()
        return set(nx.descendants(self._graph, predicate))

    def _check_monotone(self, predicate: str) -> None:
        affected = self._affected_predicates(predicate) | {predicate}
        for u, v, data in self._graph.edges(data=True):
            if data.get("negative") and u in affected:
                raise ProgramError(
                    f"cannot maintain incrementally: growth of {predicate} "
                    f"flows through negation of {u} into {v}"
                )

    def check_insertable(self, predicate: str) -> None:
        """Raise :class:`ProgramError` if ``predicate`` cannot grow.

        The serve daemon calls this *before* an update becomes durable:
        an insert into a derived relation, or one whose growth flows
        through negation, must be rejected without a WAL append so
        replay never meets an entry the evaluator would refuse.
        """
        if predicate in self.program.idb_predicates():
            raise ProgramError(f"{predicate} is derived; insert into the EDB only")
        self._check_monotone(predicate)

    # -- the maintenance operations ------------------------------------------

    def insert(self, predicate: str, values: Sequence, condition: Condition = TRUE) -> int:
        """Add an EDB fact; returns the number of new IDB derivations."""
        self.check_insertable(predicate)
        table = self._combined.table(predicate)
        added = self._storage.indexed(predicate).add(list(values), condition)
        # mirror into the caller's database so both views stay consistent
        self.database.table(predicate).add(list(values), condition)
        if not added:
            return 0
        new_tuple = table.tuples()[-1]
        delta = CTable(predicate, table.schema)
        delta.add(new_tuple)
        return self._propagate({predicate: delta})

    def weaken(self, predicate: str, values: Sequence, extra_condition: Condition) -> int:
        """Widen a fact's worlds: add the same data part under a new condition."""
        return self.insert(predicate, values, extra_condition)

    def apply(
        self,
        kind: str,
        predicate: str,
        values: Sequence,
        condition: Condition = TRUE,
    ) -> int:
        """Dispatch one maintenance operation by name.

        The serve daemon's WAL replay funnels through this single entry
        point so a recovered state runs exactly the code a live update
        ran.  ``kind`` is ``"insert"`` or ``"weaken"``.
        """
        if kind == "insert":
            return self.insert(predicate, values, condition)
        if kind == "weaken":
            return self.weaken(predicate, values, condition)
        raise ProgramError(f"unknown maintenance operation {kind!r}")

    # -- propagation ------------------------------------------------------------

    def impact(self, predicate: str) -> Tuple[str, ...]:
        """IDB predicates a change to ``predicate`` can actually reach.

        The serve daemon consults this before admitting an update: an
        empty impact set means the delta can only touch its own relation
        and propagation is a no-op for every derived table.
        """
        return tuple(sorted(self._affected_predicates(predicate)))

    def _is_new(self, predicate: str, key: Tuple[Term, ...], condition: Condition) -> bool:
        per = self._conditions.setdefault(predicate, {})
        existing = per.get(key)
        if existing is None:
            return True
        if condition in existing:
            return False
        if self.solver is None:
            return True
        disjoined = disjoin(existing)
        if self.precheck is not None:
            hint = self.precheck.implies_hint(condition, disjoined)
            if hint is not None:
                self.stats.extra["static_implies_hits"] = (
                    self.stats.extra.get("static_implies_hits", 0) + 1
                )
                return not hint
        return not self.solver.implies(condition, disjoined)

    def _delta_satisfiable(self, condition: Condition) -> bool:
        """Satisfiability for delta pruning, via the static precheck when
        it can answer (definite verdicts agree with the solver)."""
        if self.precheck is not None:
            hint = self.precheck.sat_hint(condition)
            if hint is not None:
                self.stats.extra["static_sat_hits"] = (
                    self.stats.extra.get("static_sat_hits", 0) + 1
                )
                return hint
        assert self.solver is not None
        return self.solver.is_satisfiable(condition)

    def _record(self, predicate: str, key: Tuple[Term, ...], condition: Condition) -> None:
        self._conditions.setdefault(predicate, {}).setdefault(key, []).append(condition)

    def _propagate(self, initial_delta: Dict[str, CTable]) -> int:
        new_count = 0
        delta = dict(initial_delta)
        # rounds proceed until no rule derives anything new anywhere
        while delta:
            delta_indexed = {
                name: IndexedTable(table) for name, table in delta.items() if len(table)
            }
            if not delta_indexed:
                break
            next_delta: Dict[str, CTable] = {}
            # Reader-index slicing: only rules with a positive body
            # literal over a delta predicate can fire this round, and
            # they are visited in program order — exactly the rules the
            # unsliced loop's membership check would have let through.
            reader_ids = {
                id(rule)
                for name in delta_indexed
                for rule in self._readers.get(name, ())
            }
            for rule in self.program:
                if id(rule) not in reader_ids:
                    continue
                positives = list(rule.positive_literals())
                for position, literal in enumerate(positives):
                    if literal.predicate not in delta_indexed:
                        continue
                    for bindings, condition in derive(
                        rule,
                        self._storage,
                        delta_override=delta_indexed,
                        delta_position=position,
                    ):
                        if self.solver is not None and not self._delta_satisfiable(
                            condition
                        ):
                            self.stats.tuples_pruned += 1
                            continue
                        head = build_head(rule, bindings)
                        pred = rule.head.predicate
                        if not self._is_new(pred, head, condition):
                            continue
                        self._record(pred, head, condition)
                        self._storage.indexed(pred).add(list(head), condition)
                        bucket = next_delta.setdefault(
                            pred, CTable(pred, self.result.table(pred).schema)
                        )
                        bucket.add(list(head), condition)
                        new_count += 1
                        self.stats.tuples_generated += 1
            delta = next_delta
        return new_count

    # -- views -------------------------------------------------------------------

    def table(self, predicate: str) -> CTable:
        """Current state of an IDB (or EDB) relation."""
        return self._combined.table(predicate)

    def relations(self) -> Tuple[str, ...]:
        """Names of every maintained relation (EDB and IDB)."""
        return self._combined.names()

    @property
    def combined(self) -> Database:
        """The live combined EDB+IDB view (mutates as updates apply)."""
        return self._combined
