"""Stratification of fauré-log programs.

The paper notes (§6) that recursive fauré-log is "implemented by
stratification to correctly process the conditions": negation must not
occur inside a recursive cycle, and predicates are evaluated stratum by
stratum so a negated relation is complete before its complement condition
is computed.

This module builds the predicate dependency graph (positive and negative
edges), condenses it into strongly connected components, and orders the
components bottom-up.  A negative edge inside a component is a
stratification error.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

import networkx as nx

from .ast import Program, ProgramError

__all__ = ["dependency_graph", "stratify", "is_recursive"]


def dependency_graph(program: Program) -> "nx.DiGraph":
    """Directed graph over predicates; edge B → H when H's body uses B.

    Edge attribute ``negative`` is True when some rule uses B under
    negation to derive H.
    """
    graph = nx.DiGraph()
    for rule in program:
        graph.add_node(rule.head.predicate)
        for lit in rule.literals():
            graph.add_node(lit.predicate)
            if graph.has_edge(lit.predicate, rule.head.predicate):
                if lit.negated:
                    graph[lit.predicate][rule.head.predicate]["negative"] = True
            else:
                graph.add_edge(lit.predicate, rule.head.predicate, negative=lit.negated)
    return graph


def stratify(program: Program) -> List[FrozenSet[str]]:
    """Partition the IDB predicates into evaluation strata.

    Returns a list of predicate sets; stratum *i* may depend positively
    on itself and on strata ``<= i``, and negatively only on strata
    ``< i``.  Raises :class:`ProgramError` when negation occurs in a
    cycle.  EDB predicates are excluded (they are stratum "-1": always
    available).
    """
    idb = program.idb_predicates()
    graph = dependency_graph(program)
    sccs = list(nx.strongly_connected_components(graph))
    component_of: Dict[str, int] = {}
    for i, scc in enumerate(sccs):
        for pred in scc:
            component_of[pred] = i

    for u, v, data in graph.edges(data=True):
        if data.get("negative") and component_of[u] == component_of[v]:
            raise ProgramError(
                f"program is not stratifiable: negation of {u} in a cycle with {v}"
            )

    condensed = nx.DiGraph()
    condensed.add_nodes_from(range(len(sccs)))
    for u, v in graph.edges():
        cu, cv = component_of[u], component_of[v]
        if cu != cv:
            condensed.add_edge(cu, cv)

    strata: List[FrozenSet[str]] = []
    for comp_index in nx.topological_sort(condensed):
        preds = frozenset(p for p in sccs[comp_index] if p in idb)
        if preds:
            strata.append(preds)
    return strata


def is_recursive(program: Program) -> bool:
    """True when some predicate (transitively) depends on itself."""
    graph = dependency_graph(program)
    idb = program.idb_predicates()
    for scc in nx.strongly_connected_components(graph):
        if len(scc) > 1 and scc & idb:
            return True
        (only,) = scc if len(scc) == 1 else (None,)
        if only is not None and graph.has_edge(only, only):
            return True
    return False
