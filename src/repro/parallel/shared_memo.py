"""Cross-worker shared verdict store: an append-only, crash-tolerant log.

The parallel fan-outs (batched pruning, pattern queries, verification
ladders) give every worker process a *private* :class:`MemoTable`, so a
condition the serial path decides once is re-decided by every worker
that meets it — the reason BENCH_parallel showed ``--jobs 4`` spending
4–10x the serial solver time.  This module restores the serial memo's
"decided once per run" property across process boundaries:

* the parent opens a :class:`SharedVerdictStore` — a plain file of
  fixed-size records — **seeds** it with the parent memo's existing
  definite verdicts, and subscribes a writer to the parent memo's
  observer list (:class:`SharedMemoSession`);
* every worker's private memo gets the same writer plus (when safe, see
  below) a read-through ``backing``: on a local miss it polls the log,
  folds any new records, and answers from the store — so a verdict
  computed by *any* process is computed exactly once per run.

**Record format** (:data:`RECORD_SIZE` bytes, fixed):

====== ===== ==========================================================
offset bytes field
====== ===== ==========================================================
0      16    BLAKE2b-128 of the canonical memo key (op + conditions),
             *without* the domain signature
16     8     BLAKE2b-64 of the domain signature the verdict depends on
24     1     verdict byte: 1 = UNSAT(False), 2 = SAT(True); anything
             else (including the 0 of a zero-filled page) is invalid
25     3     zero padding
28     4     CRC-32 of bytes [0, 28)
====== ===== ==========================================================

**Crash tolerance.**  Writers append one record per ``os.write`` on an
``O_APPEND`` descriptor; POSIX serializes such writes, so concurrent
appends interleave at record granularity.  A writer SIGKILLed mid-append
can leave at most one torn tail record; readers validate the CRC and the
verdict byte at every record boundary and *skip* anything invalid.
Skipping is sound: a dropped record is a lost cache hit, never a wrong
answer — the reader simply re-decides.  The same argument covers domain
fingerprint mismatches (rejected at lookup) and hash-encoding drift
between processes (under ``spawn`` both sides re-derive the hash from
the same deterministic ``repr``-based encoding; a mismatch costs a hit).

**Soundness** (extends docs/SEMANTICS.md §5's memo argument): a record
is written only for a *definite* verdict of an exact decision procedure,
keyed by canonical form + domain fingerprint.  Exactness means any two
processes that compute a verdict for the same key compute the *same*
verdict, so reading another worker's record is indistinguishable from
having computed it locally.  ``UNKNOWN`` is never written — a degraded
(budget/fault) outcome in one worker must not rob another worker of its
fresh chance at a real answer, mirroring the memo's own contract.

**Determinism.**  Store *writes* never change the writer's own call
sequence.  Store *reads* can (a served verdict skips a governed solver
call), so reads are enabled only for ungoverned runs — any armed
governor (deadline, budgets, fault injector) stands the read side down,
exactly like the static optimizer's precheck stands down under an armed
injector.  Governed runs therefore stay byte-identical to ``jobs=1``
including their governor event ledgers and fault-injection schedules,
while the common ungoverned benchmark path gets the full sharing win
(identical *answers* either way; exactness guarantees that).
"""

from __future__ import annotations

import os
import struct
import tempfile
import zlib
from typing import Dict, Optional, Tuple

__all__ = [
    "RECORD_SIZE",
    "encode_memo_key",
    "SharedVerdictStore",
    "StoreHandle",
    "SharedMemoSession",
    "session_for",
    "reads_allowed",
]

RECORD_SIZE = 32
_HEADER = b"faure-shared-verdict-log:v1\n".ljust(RECORD_SIZE, b"\0")
_VERDICT_BYTES = {False: 1, True: 2}
_VERDICT_VALUES = {1: False, 2: True}


def encode_memo_key(key: Tuple) -> Optional[Tuple[bytes, bytes]]:
    """``(key_hash16, domain_fp8)`` for a :class:`MemoTable` key.

    The two hash fields are kept separate so a lookup can distinguish
    "different question" (key hash miss) from "same condition, different
    declared domains" (fingerprint rejection) — the latter is a tested
    safety property, not an accident of hashing.  Encoding goes through
    ``repr`` of the canonical condition(s) and the domain signature:
    both are deterministic structural renderings (no set iteration, no
    per-process hash randomization), so cooperating processes derive
    identical bytes for identical keys.  Returns ``None`` for keys this
    version does not encode (future ops age out soundly).
    """
    from hashlib import blake2b

    op = key[0]
    if op == "sat" and len(key) == 3:
        body = f"sat\x00{key[1]!r}"
        signature = key[2]
    elif op == "implies" and len(key) == 4:
        body = f"implies\x00{key[1]!r}\x00{key[2]!r}"
        signature = key[3]
    else:
        return None
    key_hash = blake2b(body.encode("utf-8"), digest_size=16).digest()
    domain_fp = blake2b(repr(signature).encode("utf-8"), digest_size=8).digest()
    return key_hash, domain_fp


def pack_record(key_hash: bytes, domain_fp: bytes, value: bool) -> bytes:
    """One checksummed :data:`RECORD_SIZE`-byte log record."""
    head = key_hash + domain_fp + struct.pack("<B3x", _VERDICT_BYTES[bool(value)])
    return head + struct.pack("<I", zlib.crc32(head))


def unpack_record(record: bytes) -> Optional[Tuple[bytes, bytes, bool]]:
    """Decode one record; ``None`` when torn/corrupt (checksum or
    verdict byte invalid) — the caller skips it."""
    head, (crc,) = record[:28], struct.unpack("<I", record[28:32])
    if zlib.crc32(head) != crc:
        return None
    verdict = _VERDICT_VALUES.get(record[24])
    if verdict is None:
        return None
    return record[:16], record[16:24], verdict


class SharedVerdictStore:
    """One process's view of the shared append-only verdict log.

    Every cooperating process (parent and workers) holds its own
    instance over the same path: an ``O_APPEND`` write descriptor, a
    read descriptor, a poll offset, and the dictionary of valid records
    folded so far.  See the module docstring for the format and the
    crash-tolerance argument.
    """

    def __init__(self, path: str, _create: bool = False):
        self.path = path
        if _create:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o600)
            try:
                os.write(fd, _HEADER)
            finally:
                os.close(fd)
        self._wfd = os.open(path, os.O_WRONLY | os.O_APPEND)
        self._rfd = os.open(path, os.O_RDONLY)
        self._offset = len(_HEADER)
        self._verdicts: Dict[bytes, Tuple[bytes, bool]] = {}
        #: Per-key encoding cache: hashing goes through ``repr`` of
        #: canonical conditions, which is the dominant cost of a store
        #: hit — and every served key is encoded twice (the lookup, then
        #: the write-observer dedup when the verdict folds into the local
        #: memo).  Bounded by the memo's own entry ceiling in practice.
        self._encoded: Dict[Tuple, Optional[Tuple[bytes, bytes]]] = {}
        #: Whether lookups may answer (False = write-only wiring).
        self.reads = True
        self.hits = 0
        self.writes = 0
        self.skipped_records = 0
        self.fingerprint_rejections = 0
        self._owner_pid = os.getpid() if _create else None
        self._closed = False

    @classmethod
    def create(cls, dir: Optional[str] = None) -> "SharedVerdictStore":
        """Create a fresh log in a temp file; the creator owns unlink.

        The unlink is also registered with :mod:`atexit` — a run whose
        memo is never cleared (the common CLI exit path) must not leave
        the log behind.  ``close`` is idempotent and PID-guarded, so
        the hook is a harmless no-op after an explicit close and in
        forked children.
        """
        import atexit

        fd, path = tempfile.mkstemp(prefix="faure-verdicts-", suffix=".log", dir=dir)
        os.close(fd)
        store = cls(path, _create=True)
        atexit.register(store.close, unlink=True)
        return store

    @classmethod
    def attach(cls, path: str) -> "SharedVerdictStore":
        """Open an existing log (worker side); never unlinks it."""
        return cls(path)

    # -- writing -------------------------------------------------------------

    def append(self, key_hash: bytes, domain_fp: bytes, value: bool) -> None:
        """Append one verdict record (a single ``O_APPEND`` write)."""
        known = self._verdicts.get(key_hash)
        if known is not None and known[0] == domain_fp:
            return  # already durable (e.g. a backing hit echoed back)
        os.write(self._wfd, pack_record(key_hash, domain_fp, value))
        self._verdicts[key_hash] = (domain_fp, bool(value))
        self.writes += 1

    def append_key(self, key: Tuple, value: bool) -> None:
        """Observer form: encode a memo key, append when encodable.

        UNKNOWN can never reach here — :meth:`MemoTable.put` (the only
        caller) rejects non-boolean values by contract.
        """
        encoded = self._encode_cached(key)
        if encoded is not None:
            self.append(encoded[0], encoded[1], value)

    def _encode_cached(self, key: Tuple) -> Optional[Tuple[bytes, bytes]]:
        try:
            return self._encoded[key]
        except KeyError:
            encoded = encode_memo_key(key)
            self._encoded[key] = encoded
            return encoded

    # -- reading -------------------------------------------------------------

    def poll(self) -> int:
        """Fold every complete record appended since the last poll.

        Returns the number of *valid* records folded.  Torn or corrupt
        records (a writer died mid-append) are counted and skipped; the
        trailing partial record, if any, is left for the next poll in
        case its writer is still mid-``write``.
        """
        size = os.fstat(self._rfd).st_size
        end = size - ((size - len(_HEADER)) % RECORD_SIZE)
        folded = 0
        while self._offset < end:
            chunk = os.pread(
                self._rfd, min(end - self._offset, RECORD_SIZE * 2048), self._offset
            )
            if len(chunk) < RECORD_SIZE:
                break  # racing a truncation-free grow; retry next poll
            usable = len(chunk) - (len(chunk) % RECORD_SIZE)
            for at in range(0, usable, RECORD_SIZE):
                decoded = unpack_record(chunk[at : at + RECORD_SIZE])
                if decoded is None:
                    self.skipped_records += 1
                    continue
                key_hash, domain_fp, verdict = decoded
                self._verdicts[key_hash] = (domain_fp, verdict)
                folded += 1
            self._offset += usable
        return folded

    def lookup(self, key_hash: bytes, domain_fp: bytes) -> Optional[bool]:
        """Answer from the log, polling for new records first."""
        if not self.reads:
            return None
        known = self._verdicts.get(key_hash)
        if known is None:
            self.poll()
            known = self._verdicts.get(key_hash)
            if known is None:
                return None
        fp, verdict = known
        if fp != domain_fp:
            self.fingerprint_rejections += 1
            return None
        self.hits += 1
        return verdict

    def lookup_key(self, key: Tuple) -> Optional[bool]:
        """Backing form: :meth:`MemoTable` read-through hook."""
        encoded = self._encode_cached(key)
        if encoded is None:
            return None
        return self.lookup(encoded[0], encoded[1])

    # -- lifecycle -----------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        return {
            "shared_memo_hits": self.hits,
            "shared_memo_writes": self.writes,
            "shared_memo_skipped": self.skipped_records,
            "shared_memo_fp_rejections": self.fingerprint_rejections,
        }

    def close(self, unlink: bool = False) -> None:
        if self._closed:
            return
        self._closed = True
        for fd in (self._wfd, self._rfd):
            try:
                os.close(fd)
            except OSError:
                pass
        # Only the creating *process* may unlink: forked workers inherit
        # the parent's store object and must not tear the file down on
        # their own exit.
        if unlink and self._owner_pid == os.getpid():
            try:
                os.unlink(self.path)
            except OSError:
                pass

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close(unlink=True)  # PID-guarded: no-op off-creator
        except Exception:
            pass


class StoreHandle:
    """Picklable pointer a worker initializer uses to attach.

    ``reads`` carries the parent's read-enable decision (see
    :func:`reads_allowed`); attach failures (the parent already cleaned
    up) degrade to no store at all — workers just lose the sharing.
    """

    __slots__ = ("path", "reads")

    def __init__(self, path: str, reads: bool):
        self.path = path
        self.reads = reads

    def __getstate__(self):
        return (self.path, self.reads)

    def __setstate__(self, state):
        self.path, self.reads = state

    def open(self) -> Optional[SharedVerdictStore]:
        try:
            store = SharedVerdictStore.attach(self.path)
        except OSError:
            return None
        store.reads = self.reads
        return store


def reads_allowed(governor) -> bool:
    """Whether store *reads* keep this run byte-identical to serial.

    A served verdict skips a governed solver call, which would shift
    call budgets, deadlines, and fault-injection indices relative to
    ``jobs=1`` — so any armed governor stands the read side down (writes
    stay on; they never change the writer's sequence).
    """
    return governor is None


class SharedMemoSession:
    """Parent-side lifecycle of one shared verdict log.

    Creates the store, seeds it with the memo's existing definite
    verdicts (the compute-phase answers are the bulk of the win for the
    pattern fan-out), subscribes the writer to the memo, and hands out
    worker :class:`StoreHandle`\\ s.  One session per :class:`MemoTable`
    (see :func:`session_for`); closed when the memo is cleared.
    """

    def __init__(self, memo):
        self.memo = memo
        self.store = SharedVerdictStore.create()
        for key, value in list(memo._entries.items()):
            self.store.append_key(key, value)
        memo.add_observer(self.store.append_key)
        self.closed = False

    def handle(self, reads: bool) -> StoreHandle:
        return StoreHandle(self.store.path, reads)

    def enable_parent_reads(self, enabled: bool) -> None:
        """Point the parent memo's read-through at the store (or away).

        Only for ungoverned runs (:func:`reads_allowed`); the prune
        probe and any later serial phase then see worker verdicts too.
        """
        self.memo.backing = self.store.lookup_key if enabled else None

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self.memo.remove_observer(self.store.append_key)
        if self.memo.backing == self.store.lookup_key:
            self.memo.backing = None
        self.store.close(unlink=True)


def session_for(memo, executor) -> Optional[SharedMemoSession]:
    """The (lazily created) session shared by everything using ``memo``.

    ``None`` when there is nothing to share through (no memo — the
    ``--no-memo`` contract extends to the store) or sharing is disabled
    on the executor (``--no-shared-memo``).  The session is cached on
    the memo itself so successive fan-outs — and different executors
    over the same memo — reuse one log, preserving "decided once per
    *run*" across phases; :meth:`MemoTable.clear` closes it.
    """
    if memo is None or not getattr(executor, "shared_memo", True):
        return None
    session = getattr(memo, "_store_session", None)
    if session is None or session.closed:
        session = SharedMemoSession(memo)
        memo._store_session = session
    return session
