"""Picklable snapshots of governance state for worker processes.

The robustness contracts of the serial pipeline (PR 1) must survive the
process boundary: a worker deciding a shard of conditions has to honor
the same wall-clock deadline, the same per-call step budget, the same
condition-size ceiling, and the same deterministic fault schedule the
parent would have applied.  Two pieces make that possible:

* :class:`GovernorSpec` — an immutable snapshot of a
  :class:`~repro.robustness.governor.Governor` taken at fan-out time.
  The deadline serializes as *remaining* seconds (workers re-arm their
  own monotonic clock), budgets serialize as their remaining values, and
  the degradation policy travels verbatim.  ``build()`` reconstitutes a
  fresh, armed governor inside the worker.

* :class:`ScheduledFaultInjector` — a per-shard fault schedule computed
  by the parent *before* sharding.  Faults are assigned per condition
  class from the parent injector's :class:`FaultPlan` applied to the
  class's global decision index, so the schedule is a pure function of
  the workload — the same classes fault regardless of how many workers
  the classes are sharded across.  This is what makes ``jobs=4`` and
  ``jobs=1`` byte-identical even under injection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..robustness.errors import BudgetExceeded, ConditionTooLarge, SolverFailure
from ..robustness.faultinject import FaultInjector, FaultPlan
from ..robustness.governor import Governor

__all__ = ["GovernorSpec", "ScheduledFaultInjector", "fault_directive"]


def fault_directive(plan: Optional[FaultPlan], call_index: int) -> Optional[str]:
    """The fault kind ``plan`` fires on the 1-based ``call_index``-th call.

    Mirrors :meth:`FaultInjector.on_solver_call` exactly (including the
    timeout > failure > oversize precedence), but as a pure function, so
    the parent can precompute a shard's schedule from global call
    indices.
    """
    if plan is None:
        return None
    n = call_index - plan.start_after
    if n <= 0:
        return None
    if plan.timeout_every is not None and n % plan.timeout_every == 0:
        return "timeout"
    if plan.failure_every is not None and n % plan.failure_every == 0:
        return "failure"
    if plan.oversize_every is not None and n % plan.oversize_every == 0:
        return "oversize"
    return None


class ScheduledFaultInjector:
    """Fires an explicit per-call fault schedule inside a worker.

    ``schedule[i]`` is ``None`` or ``(kind, global_call)`` for the
    worker's ``i``-th solver call, where ``global_call`` is the call
    index the *serial* path would have used — so an injected fault
    raises with exactly the message the parent's live
    :class:`FaultInjector` would have produced.  Calls beyond the
    schedule pass through untouched.  Plugs into
    :meth:`Governor.begin_solver_call` exactly like
    :class:`FaultInjector`, so injected faults take the same
    degradation path real exhaustion does.
    """

    def __init__(self, schedule: Sequence[Optional[tuple]]):
        self.schedule = list(schedule)
        self.calls = 0
        self.injected: Dict[str, int] = {"timeout": 0, "failure": 0, "oversize": 0}

    def on_solver_call(self, governor=None) -> None:
        self.calls += 1
        entry = (
            self.schedule[self.calls - 1]
            if self.calls <= len(self.schedule)
            else None
        )
        if entry is None:
            return
        kind, global_call = entry
        self.injected[kind] += 1
        if governor is not None:
            governor.events.injected_faults += 1
        if kind == "timeout":
            raise BudgetExceeded(
                f"injected solver timeout (call #{global_call})",
                resource="injected",
            )
        if kind == "failure":
            raise SolverFailure(f"injected solver failure (call #{global_call})")
        raise ConditionTooLarge(
            f"injected oversized condition (call #{global_call})"
        )


@dataclass(frozen=True)
class GovernorSpec:
    """Immutable, picklable snapshot of a governor at fan-out time."""

    deadline_remaining: Optional[float] = None
    solver_call_budget: Optional[int] = None
    steps_per_call: Optional[int] = None
    max_condition_atoms: Optional[int] = None
    on_budget: str = "degrade"
    fault_plan: Optional[FaultPlan] = None

    @classmethod
    def from_governor(cls, governor: Optional[Governor]) -> Optional["GovernorSpec"]:
        """Snapshot ``governor`` (``None`` passes through as ``None``)."""
        if governor is None:
            return None
        remaining = governor.remaining_seconds()
        if remaining is None:
            remaining = governor.deadline_seconds  # configured but not armed
        plan = None
        if isinstance(governor.injector, FaultInjector):
            plan = governor.injector.plan
        return cls(
            deadline_remaining=remaining,
            solver_call_budget=governor.remaining_calls(),
            steps_per_call=governor.steps_per_call,
            max_condition_atoms=governor.max_condition_atoms,
            on_budget=governor.on_budget,
            fault_plan=plan,
        )

    def build(self, injector=None) -> Governor:
        """An armed worker-side governor honoring this snapshot.

        An already-expired deadline (``deadline_remaining <= 0``) stays
        expired: the rebuilt governor raises on its first check, so a
        mid-run deadline degrades worker decisions to ``UNKNOWN`` just
        as it would have in the parent.
        """
        governor = Governor(
            deadline_seconds=self.deadline_remaining,
            solver_call_budget=self.solver_call_budget,
            steps_per_call=self.steps_per_call,
            max_condition_atoms=self.max_condition_atoms,
            on_budget=self.on_budget,
            injector=injector,
        )
        governor.start()
        return governor
