"""Multiprocess shard executor with deterministic merge order.

:class:`ParallelExecutor` is the one place the pipeline touches
``multiprocessing``: it fans a list of picklable tasks across a worker
pool and returns results **in submission order**, so every caller's
merge is deterministic regardless of which worker finished first.
Worker-side state that is expensive to ship per task (a pickled
:class:`~repro.solver.domains.DomainMap`, the reachability c-table, a
:class:`~repro.parallel.spec.GovernorSpec`) goes through the pool
initializer instead, paying the serialization cost once per worker.

``jobs=1`` never creates a pool — tasks run inline in the parent, in
order, so the serial path is byte-identical to a pipeline without this
module.  The executor prefers the ``fork`` start method where available
(cheap worker startup, no re-import); ``spawn`` is the portable
fallback and works because every payload is explicitly picklable.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Callable, List, Optional, Sequence

__all__ = ["ParallelExecutor"]


class ParallelExecutor:
    """Fan picklable tasks across a process pool, merging in task order.

    Parameters
    ----------
    jobs:
        Worker process count; ``1`` (the default) runs everything inline
        in the parent process without touching ``multiprocessing``.
    start_method:
        Override the multiprocessing start method (``"fork"``,
        ``"spawn"``, ``"forkserver"``).  Default: ``fork`` when the
        platform offers it, else ``spawn``.
    """

    def __init__(self, jobs: int = 1, start_method: Optional[str] = None):
        self.jobs = max(1, int(jobs))
        self._start_method = start_method

    def _context(self):
        methods = multiprocessing.get_all_start_methods()
        method = self._start_method or ("fork" if "fork" in methods else "spawn")
        return multiprocessing.get_context(method)

    def map(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        initializer: Optional[Callable] = None,
        initargs: tuple = (),
        chunksize: Optional[int] = None,
    ) -> List[Any]:
        """``[fn(t) for t in tasks]`` across the pool, in task order.

        A worker exception propagates to the caller (first by task
        order), matching the serial path's behavior under ``on_budget=
        "fail"``.
        """
        tasks = list(tasks)
        if self.jobs == 1 or len(tasks) <= 1:
            if initializer is not None:
                initializer(*initargs)
            return [fn(t) for t in tasks]
        workers = min(self.jobs, len(tasks))
        if chunksize is None:
            chunksize = max(1, len(tasks) // (workers * 4))
        ctx = self._context()
        pool = ctx.Pool(processes=workers, initializer=initializer, initargs=initargs)
        try:
            return pool.map(fn, tasks, chunksize=chunksize)
        finally:
            pool.close()
            pool.join()
