"""Multiprocess shard executor with deterministic merge order.

:class:`ParallelExecutor` is the plain pool executor: it fans a list of
picklable tasks across a worker pool and returns results **in
submission order**, so every caller's merge is deterministic regardless
of which worker finished first.  Worker-side state that is expensive to
ship per task (a pickled :class:`~repro.solver.domains.DomainMap`, the
reachability c-table, a :class:`~repro.parallel.spec.GovernorSpec`)
goes through the pool initializer instead, paying the serialization
cost once per worker.

``jobs=1`` never creates a pool — tasks run inline in the parent, in
order, so the serial path is byte-identical to a pipeline without this
module.  The inline path snapshots and restores the worker module's
state dicts (see :data:`repro.parallel.worker.INLINE_STATE_DICTS`), so
calling the initializer in the parent cannot leak worker globals across
calls.  The executor prefers the ``fork`` start method where available
(cheap worker startup, no re-import); ``spawn`` is the portable
fallback and works because every payload is explicitly picklable.

This executor trusts its workers: a worker killed mid-task (OOM,
SIGKILL) aborts or hangs the whole map.  Production paths use
:class:`~repro.parallel.supervisor.SupervisedExecutor`, which adds
crash detection, per-task timeouts, deterministic retry, and inline
quarantine on top of the same interface.
"""

from __future__ import annotations

import multiprocessing
import sys
from contextlib import contextmanager
from typing import Any, Callable, Iterator, List, Optional, Sequence

__all__ = ["ParallelExecutor", "inline_state_guard", "balanced_shards"]


def balanced_shards(items: Sequence[Any], shards: int) -> List[List[Any]]:
    """Split ``items`` into ≤ ``shards`` contiguous, size-balanced runs.

    Contiguity is what makes coarse sharding free to merge: flattening
    the shard results in shard order *is* the original item order, so
    callers keep their deterministic in-order fold.  Sizes differ by at
    most one; empty shards are never returned.
    """
    items = list(items)
    shards = max(1, min(int(shards), len(items))) if items else 0
    out: List[List[Any]] = []
    base, extra = divmod(len(items), shards) if shards else (0, 0)
    at = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        out.append(items[at : at + size])
        at += size
    return out


@contextmanager
def inline_state_guard(initializer: Optional[Callable]) -> Iterator[None]:
    """Snapshot/restore worker-module globals around an inline run.

    Pool initializers stash per-worker state in module-level dicts
    (:mod:`repro.parallel.worker`); running one *in the parent* (the
    ``jobs=1`` path, or a quarantined task) would otherwise leak that
    state into the parent process across calls.  The initializer's
    module declares the dicts to protect in ``INLINE_STATE_DICTS``;
    modules without the attribute are left alone.
    """
    module = (
        sys.modules.get(getattr(initializer, "__module__", None))
        if initializer is not None
        else None
    )
    guarded = getattr(module, "INLINE_STATE_DICTS", ()) if module else ()
    snapshots = [dict(d) for d in guarded]
    try:
        yield
    finally:
        for state, snapshot in zip(guarded, snapshots):
            state.clear()
            state.update(snapshot)


class ParallelExecutor:
    """Fan picklable tasks across a process pool, merging in task order.

    Parameters
    ----------
    jobs:
        Worker process count; ``1`` (the default) runs everything inline
        in the parent process without touching ``multiprocessing``.
    start_method:
        Override the multiprocessing start method (``"fork"``,
        ``"spawn"``, ``"forkserver"``).  Default: ``fork`` when the
        platform offers it, else ``spawn``.
    shared_memo:
        Whether call sites may share solver verdicts across workers
        through this executor (the cross-worker verdict store,
        :mod:`repro.parallel.shared_memo`).  CLI: ``--no-shared-memo``.
    """

    def __init__(
        self,
        jobs: int = 1,
        start_method: Optional[str] = None,
        shared_memo: bool = True,
    ):
        self.jobs = max(1, int(jobs))
        self._start_method = start_method
        self.shared_memo = shared_memo
        #: Task messages submitted by the most recent :meth:`map`.
        self.last_tasks = 0
        #: Exact task+result bytes moved over IPC by the most recent
        #: :meth:`map`; 0 on the inline path (nothing crosses a process
        #: boundary) and for the plain pool (which does not meter its
        #: internal queue).  The supervised executor meters both ways.
        self.last_ipc_bytes = 0

    def _context(self):
        methods = multiprocessing.get_all_start_methods()
        method = self._start_method or ("fork" if "fork" in methods else "spawn")
        return multiprocessing.get_context(method)

    def _run_inline(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        initializer: Optional[Callable],
        initargs: tuple,
    ) -> List[Any]:
        """The serial path: initializer + tasks in the parent, guarded."""
        with inline_state_guard(initializer):
            if initializer is not None:
                initializer(*initargs)
            return [fn(t) for t in tasks]

    def map(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        initializer: Optional[Callable] = None,
        initargs: tuple = (),
        chunksize: Optional[int] = None,
        refresh_initargs: Optional[Callable[[], tuple]] = None,
    ) -> List[Any]:
        """``[fn(t) for t in tasks]`` across the pool, in task order.

        A worker exception propagates to the caller (first by task
        order), matching the serial path's behavior under ``on_budget=
        "fail"``.  ``refresh_initargs`` is accepted for interface parity
        with the supervised executor but unused here — a plain pool
        never re-initializes a worker mid-run.
        """
        del refresh_initargs  # only meaningful under supervision
        tasks = list(tasks)
        self.last_tasks = len(tasks)
        self.last_ipc_bytes = 0
        if self.jobs == 1 or len(tasks) <= 1:
            return self._run_inline(fn, tasks, initializer, initargs)
        workers = min(self.jobs, len(tasks))
        if chunksize is None:
            chunksize = max(1, len(tasks) // (workers * 4))
        ctx = self._context()
        pool = ctx.Pool(processes=workers, initializer=initializer, initargs=initargs)
        try:
            results = pool.map(fn, tasks, chunksize=chunksize)
        except BaseException:
            # On any error (including KeyboardInterrupt) close()+join()
            # could block forever on live workers — kill them instead.
            pool.terminate()
            pool.join()
            raise
        pool.close()
        pool.join()
        return results
