"""Supervised execution: crash recovery, per-task timeouts, quarantine.

:class:`SupervisedExecutor` is the fault-tolerant replacement for the
bare pool of :class:`~repro.parallel.executor.ParallelExecutor`.  The
plain executor's ``Pool.map`` has three production failure modes the
ROADMAP's scale target cannot live with:

* a worker killed mid-shard (OOM, SIGKILL) hangs or aborts the whole
  map — partial work is lost and the parent may block forever;
* a stuck solver call in one worker stalls the pool with no recourse;
* there is no retry: one transient loss restarts the run from zero.

Supervision replaces ``Pool.map`` with per-worker channels and a
sentinel-watch loop:

* every worker is a directly-managed ``Process`` with its own task
  queue **and its own result pipe**, so the parent always knows which
  task a dead worker was holding (``Process.exitcode`` is the death
  sentinel) — and a SIGKILL can only ever corrupt the dead worker's
  private channel, never a lock shared with surviving workers (the
  shared-``Queue`` design deadlocks when a worker dies holding the
  queue's cross-process write lock);
* each task gets a wall-clock **timeout**; an overdue worker is killed
  and its task treated like a crash;
* a crashed/timed-out task is **retried** up to ``task_retries`` times
  with deterministic exponential backoff (seeded jitter, injectable
  clock/sleep — tests pin both), on a **respawned** worker whose
  initializer arguments are *re-snapshotted* via ``refresh_initargs``
  so governor deadlines keep honoring the original wall-clock budget;
* past the retry budget the task is **quarantined**: re-executed inline
  in the parent through the exact ``jobs=1`` path (worker-module state
  snapshotted/restored), so the final results are byte-identical to a
  serial run no matter which workers died.  Callers that prefer sound
  degradation (``on_worker_loss="degrade"``) get a :class:`TaskLost`
  marker instead; ``"fail"`` raises
  :class:`~repro.robustness.errors.WorkerLost`.

Application-level exceptions (a worker *returning* a failure, e.g.
``on_budget="fail"`` budget errors) are **not** retried — they are
deterministic answers, not infrastructure failures — and propagate to
the caller first-by-task-order, exactly like the plain executor.

Chaos hooks: the worker loop and the checkpoint journal honor the
``FAURE_CHAOS`` environment variable (see :func:`chaos_directives`), so
the chaos suite (``tests/chaos/``) can SIGKILL a worker on a chosen
task, hang a task past its timeout, or kill a run mid-checkpoint —
deterministically, through the real production code path.
"""

from __future__ import annotations

import os
import pickle
import random
import signal
import time
from dataclasses import dataclass
from multiprocessing.connection import wait as _wait_ready
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..robustness.errors import WorkerLost
from .executor import ParallelExecutor, inline_state_guard

__all__ = [
    "SupervisedExecutor",
    "TaskFailures",
    "TaskLost",
    "ON_WORKER_LOSS_MODES",
    "chaos_directives",
    "fold_failures",
]

#: Accepted unrecoverable-task policies.
ON_WORKER_LOSS_MODES = ("inline", "degrade", "fail")

#: Seconds the parent waits on the result pipes per watch-loop pass.
_POLL_SECONDS = 0.02

#: Set in every supervised worker process, so chaos task functions can
#: tell "running under a worker" from "running inline in the parent".
_WORKER_ENV = "FAURE_SUPERVISED_WORKER"


# -- chaos hooks -------------------------------------------------------------


def chaos_directives(env: Optional[str] = None) -> List[Tuple[str, ...]]:
    """Parse the ``FAURE_CHAOS`` fault schedule.

    The value is ``;``-separated directives:

    * ``kill:<task>:<sentinel>`` — SIGKILL the worker the first time it
      picks up task ``<task>`` (0-based submission index); the sentinel
      file records that the fault already fired, so the retry succeeds;
    * ``kill-always:<task>`` — SIGKILL on *every* attempt (models a
      poison task / deterministic OOM);
    * ``hang:<task>:<seconds>:<sentinel>`` — sleep ``<seconds>`` before
      running the task, once (drives the per-task timeout path);
    * ``die-after-records:<n>:<sentinel>`` — hard-exit the process after
      the checkpoint journal appends ``<n>`` records, once (consumed by
      :mod:`repro.robustness.checkpoint`, not by workers).

    Used only by the chaos test harness; unset means no faults.
    """
    raw = os.environ.get("FAURE_CHAOS", "") if env is None else env
    directives: List[Tuple[str, ...]] = []
    for part in raw.split(";"):
        part = part.strip()
        if part:
            directives.append(tuple(part.split(":")))
    return directives


def _sentinel_fires(path: str) -> bool:
    """Atomically claim a once-only fault; False if it already fired."""
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def _maybe_worker_chaos(task_index: int) -> None:
    """Fire any scheduled worker fault for ``task_index`` (test hook)."""
    for directive in chaos_directives():
        kind = directive[0]
        if kind == "kill" and int(directive[1]) == task_index:
            if _sentinel_fires(directive[2]):
                os.kill(os.getpid(), signal.SIGKILL)
        elif kind == "kill-always" and int(directive[1]) == task_index:
            os.kill(os.getpid(), signal.SIGKILL)
        elif kind == "hang" and int(directive[1]) == task_index:
            if _sentinel_fires(directive[3]):
                time.sleep(float(directive[2]))


# -- the worker loop ---------------------------------------------------------


def _supervised_worker(task_queue, result_conn, fn, initializer, initargs) -> None:
    """Body of one supervised worker process.

    Receives ``(task_index, payload)`` messages, answers
    ``(task_index, ok, result_or_error)`` on this worker's private
    result pipe; a ``None`` message is the shutdown sentinel.
    Application exceptions ship home as values — only an actual process
    death is a crash from the parent's view.  Results go over the pipe
    as explicit pickle bytes (``send_bytes``), so the parent meters the
    exact IPC volume without re-serializing anything.
    """
    os.environ[_WORKER_ENV] = "1"
    if initializer is not None:
        initializer(*initargs)
    while True:
        try:
            message = task_queue.get()
        except (EOFError, OSError):
            return  # parent is gone
        if message is None:
            return
        task_index, payload = message
        _maybe_worker_chaos(task_index)
        try:
            result = (task_index, True, fn(payload))
        except BaseException as exc:  # noqa: BLE001 — shipped, not handled
            result = (task_index, False, exc)
        try:
            result_conn.send_bytes(pickle.dumps(result))
        except (EOFError, OSError):
            return


# -- parent-side bookkeeping -------------------------------------------------


@dataclass
class TaskFailures:
    """Per-map ledger of supervision events (mirrors GovernorEvents)."""

    worker_crashes: int = 0
    task_timeouts: int = 0
    task_retries: int = 0
    tasks_quarantined: int = 0
    tasks_lost: int = 0

    @property
    def any(self) -> bool:
        return bool(
            self.worker_crashes
            or self.task_timeouts
            or self.task_retries
            or self.tasks_quarantined
            or self.tasks_lost
        )

    def as_dict(self) -> Dict[str, int]:
        return {
            "worker_crashes": self.worker_crashes,
            "task_timeouts": self.task_timeouts,
            "task_retries": self.task_retries,
            "tasks_quarantined": self.tasks_quarantined,
            "tasks_lost": self.tasks_lost,
        }

    def add(self, other: "TaskFailures") -> None:
        self.worker_crashes += other.worker_crashes
        self.task_timeouts += other.task_timeouts
        self.task_retries += other.task_retries
        self.tasks_quarantined += other.tasks_quarantined
        self.tasks_lost += other.tasks_lost


@dataclass(frozen=True)
class TaskLost:
    """Placed in a result slot under ``on_worker_loss="degrade"``.

    Call-sites translate it into their sound fallback: batched pruning
    degrades the shard's classes to UNKNOWN (tuples kept), the verifier
    reports INCONCLUSIVE, the pattern fan-out — which has no sound
    partial answer — raises :class:`WorkerLost`.
    """

    task_index: int
    reason: str


def fold_failures(executor, governor=None, stats=None) -> None:
    """Fold an executor's last-map failure ledger into caller surfaces.

    No-ops for plain executors (no ledger) and clean maps.  Counters go
    to the governor's event ledger (when governed) and to
    ``EvalStats.extra`` (always), so a degraded-by-worker-loss run is
    visible in exactly the places budget degradation already is.
    """
    failures: Optional[TaskFailures] = getattr(executor, "last_failures", None)
    if failures is None or not failures.any:
        return
    if governor is not None:
        events = governor.events
        events.worker_crashes += failures.worker_crashes
        events.task_timeouts += failures.task_timeouts
        events.task_retries += failures.task_retries
        events.tasks_quarantined += failures.tasks_quarantined
        events.tasks_lost += failures.tasks_lost
    if stats is not None:
        for key, value in failures.as_dict().items():
            if value:
                stats.extra[key] = stats.extra.get(key, 0) + value


class _Worker:
    """One supervised worker: process, private task queue, result pipe."""

    __slots__ = ("process", "queue", "reader", "current", "deadline")

    def __init__(self, process, queue, reader):
        self.process = process
        self.queue = queue
        self.reader = reader  # parent end of the private result pipe
        self.current: Optional[int] = None  # task index in flight
        self.deadline: Optional[float] = None


class SupervisedExecutor(ParallelExecutor):
    """Crash-recovering, timeout-enforcing, retrying shard executor.

    Drop-in for :class:`ParallelExecutor` — same ``map`` contract (task
    order preserved, first-by-task-order application errors) plus the
    supervision knobs:

    Parameters
    ----------
    task_timeout:
        Wall-clock seconds one task may run in a worker before the
        worker is killed and the task counted as timed out; ``None``
        (default) disables the timeout.  Quarantined inline re-runs are
        *not* preempted — inline is the serial path, and serial has no
        timeout either.
    task_retries:
        How many times a crashed/timed-out task is re-submitted before
        the ``on_worker_loss`` policy applies.
    on_worker_loss:
        ``"inline"`` (default) — quarantine: run the task inline in the
        parent, guaranteeing completion and byte-identical results;
        ``"degrade"`` — give the caller a :class:`TaskLost` marker to
        absorb soundly; ``"fail"`` — raise :class:`WorkerLost`.
    backoff_base / backoff_seed:
        Retry ``k`` (1-based, across all tasks of one map) sleeps
        ``backoff_base * 2**(k-1) * jitter`` with jitter drawn
        deterministically from ``Random(backoff_seed)`` in [0.5, 1.0) —
        the schedule is a pure function of the seed and the failure
        sequence, so tests replay it exactly.
    clock / sleep:
        Injectable time sources (tests pin them; production defaults).
    """

    def __init__(
        self,
        jobs: int = 1,
        start_method: Optional[str] = None,
        task_timeout: Optional[float] = None,
        task_retries: int = 2,
        on_worker_loss: str = "inline",
        backoff_base: float = 0.05,
        backoff_seed: int = 0,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        shared_memo: bool = True,
    ):
        super().__init__(jobs, start_method, shared_memo=shared_memo)
        if on_worker_loss not in ON_WORKER_LOSS_MODES:
            raise ValueError(
                f"on_worker_loss must be one of {ON_WORKER_LOSS_MODES}, "
                f"got {on_worker_loss!r}"
            )
        self.task_timeout = task_timeout
        self.task_retries = max(0, int(task_retries))
        self.on_worker_loss = on_worker_loss
        self.backoff_base = backoff_base
        self.backoff_seed = backoff_seed
        self.clock = clock
        self.sleep = sleep
        #: Ledger of the most recent :meth:`map` call.
        self.last_failures = TaskFailures()
        #: Cumulative ledger across the executor's lifetime.
        self.failures = TaskFailures()

    # -- public API ----------------------------------------------------------

    def map(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        initializer: Optional[Callable] = None,
        initargs: tuple = (),
        chunksize: Optional[int] = None,
        refresh_initargs: Optional[Callable[[], tuple]] = None,
    ) -> List[Any]:
        """Supervised ``[fn(t) for t in tasks]``, in task order.

        ``refresh_initargs`` (when given) produces fresh initializer
        arguments every time a worker is (re)spawned and for the
        quarantine path — the hook callers use to re-snapshot a live
        governor so a retried task honors the *original* deadline
        rather than re-arming a fresh one.
        """
        del chunksize  # supervision assigns one task at a time
        self.last_failures = TaskFailures()
        tasks = list(tasks)
        self.last_tasks = len(tasks)
        self.last_ipc_bytes = 0
        if self.jobs == 1 or len(tasks) <= 1:
            return self._run_inline(fn, tasks, initializer, initargs)
        try:
            return self._map_supervised(fn, tasks, initializer, initargs, refresh_initargs)
        finally:
            self.failures.add(self.last_failures)

    # -- supervision internals ----------------------------------------------

    def _spawn(self, ctx, fn, initializer, initargs, refresh) -> _Worker:
        if refresh is not None:
            initargs = refresh()
        queue = ctx.Queue()
        reader, writer = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_supervised_worker,
            args=(queue, writer, fn, initializer, initargs),
            daemon=True,
        )
        process.start()
        # Drop the parent's copy of the write end: once the worker dies,
        # the pipe reads EOF instead of blocking forever.
        writer.close()
        return _Worker(process, queue, reader)

    def _stop_worker(self, worker: _Worker, kill: bool) -> None:
        try:
            if kill:
                worker.process.kill()
            else:
                worker.queue.put(None)
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=2.0)
        finally:
            worker.queue.close()
            worker.reader.close()

    def _drain_worker(
        self, worker: _Worker, outcomes: Dict[int, Tuple[bool, Any]]
    ) -> None:
        """Record every complete result the worker has sent so far.

        A worker SIGKILLed mid-``send`` leaves a torn message on its
        pipe; the resulting ``EOFError``/``OSError`` is swallowed — the
        sentinel watch claims the in-flight task as a crash.
        """
        try:
            while worker.reader.poll(0):
                data = worker.reader.recv_bytes()
                self.last_ipc_bytes += len(data)
                index, ok, payload = pickle.loads(data)
                outcomes[index] = (ok, payload)
                if worker.current == index:
                    worker.current, worker.deadline = None, None
        except (EOFError, OSError):
            pass

    def _backoff(self, rng: random.Random, retry_number: int) -> None:
        delay = self.backoff_base * (2 ** (retry_number - 1))
        self.sleep(delay * (0.5 + rng.random() / 2))

    def _map_supervised(
        self,
        fn: Callable[[Any], Any],
        tasks: List[Any],
        initializer: Optional[Callable],
        initargs: tuple,
        refresh: Optional[Callable[[], tuple]],
    ) -> List[Any]:
        ctx = self._context()
        failures = self.last_failures
        rng = random.Random(self.backoff_seed)
        retry_number = 0

        pending: List[int] = list(range(len(tasks)))  # task indices to run
        attempts: Dict[int, int] = {}
        outcomes: Dict[int, Tuple[bool, Any]] = {}  # index -> (ok, payload)
        quarantined: List[int] = []
        workers: List[_Worker] = []

        def unresolved() -> int:
            return len(tasks) - len(outcomes) - len(quarantined)

        def task_failed(worker: _Worker, why: str) -> None:
            """One crash/timeout: respawn the worker, retry or give up."""
            nonlocal retry_number
            index = worker.current
            worker.current, worker.deadline = None, None
            attempts[index] = attempts.get(index, 0) + 1
            if attempts[index] <= self.task_retries:
                failures.task_retries += 1
                retry_number += 1
                self._backoff(rng, retry_number)
                pending.insert(0, index)
            elif self.on_worker_loss == "inline":
                failures.tasks_quarantined += 1
                quarantined.append(index)
            else:
                failures.tasks_lost += 1
                outcomes[index] = (True, TaskLost(index, why))
                if self.on_worker_loss == "fail":
                    raise WorkerLost(
                        f"task {index} lost after {attempts[index]} attempt(s): {why}",
                        task_index=index,
                    )

        try:
            for _ in range(min(self.jobs, len(tasks))):
                workers.append(self._spawn(ctx, fn, initializer, initargs, refresh))

            while unresolved() > 0:
                # Assign work to idle live workers, respawning as needed.
                for slot, worker in enumerate(workers):
                    if not pending:
                        break
                    if worker.current is not None:
                        continue
                    if worker.process.exitcode is not None:
                        # Died idle (or crashed after answering): replace.
                        self._stop_worker(worker, kill=True)
                        worker = self._spawn(ctx, fn, initializer, initargs, refresh)
                        workers[slot] = worker
                    index = pending.pop(0)
                    worker.current = index
                    worker.deadline = (
                        self.clock() + self.task_timeout
                        if self.task_timeout is not None
                        else None
                    )
                    message = (index, tasks[index])
                    # Meter the submit side with an explicit dumps (the
                    # queue pickles internally, where we cannot measure);
                    # tasks per map are few under coarse sharding, so the
                    # double serialization is noise.
                    self.last_ipc_bytes += len(
                        pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
                    )
                    worker.queue.put(message)

                # Drain finished results from the private pipes.
                busy = [worker for worker in workers if worker.current is not None]
                if busy:
                    ready = _wait_ready(
                        [worker.reader for worker in busy], timeout=_POLL_SECONDS
                    )
                    for worker in busy:
                        if worker.reader in ready:
                            self._drain_worker(worker, outcomes)
                else:
                    time.sleep(_POLL_SECONDS)

                # Sentinel watch: dead or overdue workers lose their task.
                now = self.clock()
                for slot, worker in enumerate(workers):
                    if worker.current is None:
                        continue
                    crashed = worker.process.exitcode is not None
                    overdue = worker.deadline is not None and now > worker.deadline
                    if not crashed and not overdue:
                        continue
                    # A worker may answer and then die, or answer right at
                    # its deadline; whatever made it onto the pipe is an
                    # answer, not a casualty.
                    self._drain_worker(worker, outcomes)
                    if worker.current is None:  # answered after all
                        if crashed:
                            self._stop_worker(worker, kill=True)
                            workers[slot] = self._spawn(
                                ctx, fn, initializer, initargs, refresh
                            )
                        continue
                    if crashed:
                        failures.worker_crashes += 1
                        why = f"worker died (exitcode {worker.process.exitcode})"
                    else:
                        failures.task_timeouts += 1
                        why = f"task exceeded its {self.task_timeout:g}s timeout"
                    self._stop_worker(worker, kill=True)
                    replacement = self._spawn(ctx, fn, initializer, initargs, refresh)
                    replacement.current = worker.current
                    workers[slot] = replacement
                    task_failed(replacement, why)

            for worker in workers:
                self._stop_worker(worker, kill=False)
            workers = []
        except BaseException:
            for worker in workers:
                self._stop_worker(worker, kill=True)
            raise

        # Quarantine: the unrecoverable tasks run inline in the parent,
        # through the exact serial path — byte-identical by construction.
        if quarantined:
            current_args = refresh() if refresh is not None else initargs
            for index in sorted(quarantined):
                try:
                    result = self._run_inline(
                        fn, [tasks[index]], initializer, current_args
                    )
                except BaseException as exc:  # noqa: BLE001 — reordered below
                    outcomes[index] = (False, exc)
                else:
                    outcomes[index] = (True, result[0])

        # First application error by task order, like the plain executor.
        for index in range(len(tasks)):
            ok, payload = outcomes[index]
            if not ok:
                raise payload
        return [outcomes[index][1] for index in range(len(tasks))]
