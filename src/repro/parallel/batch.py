"""Batched, optionally multiprocess condition pruning (pipeline phase 3).

The serial pruner asked the solver about every tuple's condition
individually, even though a c-table produced by the relational phases is
dominated by *semantically repeated* conditions (the same failure
pattern attached to many routes).  This module prunes in three stages:

1. **Group** the table by canonical condition form — one equivalence
   class per distinct canonical condition, every member tuple attached.
   With memoization disabled the grouping degrades to structural
   equality (still deduplicating identical conditions).
2. **Probe** each class once through the cheap cached prefix of the
   solver (:meth:`ConditionSolver.sat_verdict_cached`): trivial
   structure, per-solver cache, canonical collapse, memo peek.  Classes
   that survive the probe are the **residual** — the ones that need a
   real decision procedure.
3. **Decide** the residual classes: inline for ``jobs=1``; for
   ``jobs>1`` sharded at canonical-class-*group* granularity — classes
   ordered by their c-variable footprint and cut into one contiguous,
   size-balanced shard per worker (one pickle per shard, not per
   class) — across a process pool where each worker owns a
   :class:`ConditionSolver` over the pickled :class:`DomainMap` and a
   governor rebuilt from the parent's
   :class:`~repro.parallel.spec.GovernorSpec`.  Workers share verdicts
   through the cross-worker store
   (:mod:`repro.parallel.shared_memo`) and return ``(class index,
   verdict)`` pairs; the parent folds definite verdicts into the shared
   :class:`~repro.solver.memo.MemoTable` and fans all verdicts back to
   member tuples **in original table order**, so the output table is
   byte-identical whatever ``jobs`` was.

Robustness contracts preserved across the process boundary:

* the governor's deadline serializes as *remaining* wall-clock and its
  step budget/size ceiling travel verbatim; the **call budget** is
  enforced globally by the parent (a worker would otherwise get the
  whole remaining budget each), with over-budget classes degraded to
  ``UNKNOWN`` exactly as the serial call sequence would have;
* fault injection is deterministic and jobs-invariant: the parent
  precomputes each residual class's fault directive from the plan
  applied to the class's *global* decision index, so the same classes
  fault under ``jobs=1`` and ``jobs=N``;
* ``UNKNOWN`` is kept-not-cached: degraded verdicts reach the member
  tuples (kept, counted in ``stats.unknown_kept``) but never enter the
  parent's memo or per-solver cache.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from ..ctable.condition import Condition, FalseCond, TrueCond
from ..ctable.table import CTable
from ..engine.stats import EvalStats
from ..robustness.errors import BudgetExceeded
from ..robustness.faultinject import FaultInjector
from ..robustness.verdict import Verdict
from ..solver.interface import ConditionSolver
from .executor import ParallelExecutor, balanced_shards
from .shared_memo import reads_allowed, session_for
from .spec import GovernorSpec, fault_directive
from .supervisor import SupervisedExecutor, TaskLost, fold_failures
from .worker import init_prune_worker, run_prune_shard

__all__ = ["group_classes", "prune_batched"]

#: Worker counters folded into the parent's ``SolverStats`` verbatim;
#: worker wall-clock is accounted separately (it overlaps).
_FOLD_FIELDS = (
    "sat_calls",
    "implication_calls",
    "cache_hits",
    "enumeration_used",
    "dpll_used",
    "unknown_verdicts",
    "budget_hits",
    "fallbacks",
    "memo_hits",
    "memo_misses",
    "canonical_collapses",
    "fast_path_hits",
    "fast_path_misses",
)


def _atom_count(condition: Condition) -> int:
    return sum(1 for _ in condition.atoms())


def group_classes(
    table: CTable, solver: ConditionSolver
) -> Tuple[List[Tuple[Condition, List[int]]], List[int]]:
    """Group tuple indices by condition equivalence class.

    Returns ``(classes, per_tuple)`` where each class is ``(rep, member
    indices)`` — ``rep`` being the first member's *original* condition —
    in first-appearance order, and ``per_tuple`` lists indices whose
    conditions are over the governor's size ceiling.  Oversized
    conditions are never canonicalized (the ceiling applies *before*
    interning) and are decided tuple-by-tuple on the serial path, where
    the governed rejection happens without consuming fault-injection or
    call-budget slots — exactly as in the unbatched pruner.
    """
    governor = solver.governor
    ceiling = governor.max_condition_atoms if governor is not None else None
    grouped: Dict[object, int] = {}
    classes: List[Tuple[Condition, List[int]]] = []
    per_tuple: List[int] = []
    for i, tup in enumerate(table):
        cond = tup.condition
        if (
            ceiling is not None
            and solver.memo is not None
            and not isinstance(cond, (TrueCond, FalseCond))
            and _atom_count(cond) > ceiling
        ):
            per_tuple.append(i)
            continue
        key = solver.canonical(cond)
        slot = grouped.get(key)
        if slot is None:
            grouped[key] = len(classes)
            classes.append((cond, [i]))
        else:
            classes[slot][1].append(i)
    return classes, per_tuple


def _residual_directives(
    governor, count: int
) -> Tuple[Optional[FaultInjector], List[Optional[str]]]:
    """Precompute the fault kind for each global residual index.

    Directive ``r`` mirrors what the parent injector would have fired on
    its ``base + r + 1``-th call — the call the serial path would make
    for residual class ``r`` — making the schedule a pure function of
    the workload, independent of sharding.
    """
    injector = None
    if governor is not None and isinstance(governor.injector, FaultInjector):
        injector = governor.injector
    if injector is None or injector.plan is None:
        return injector, [None] * count
    base = injector.calls
    directives: List[Optional[Tuple[str, int]]] = []
    for r in range(count):
        kind = fault_directive(injector.plan, base + r + 1)
        directives.append(None if kind is None else (kind, base + r + 1))
    return injector, directives


def _emulate_over_budget(
    solver: ConditionSolver,
    injector: Optional[FaultInjector],
    directive: Optional[Tuple[str, int]],
) -> None:
    """Account one residual decision past the exhausted call budget.

    Mirrors the serial call sequence: ``begin_solver_call`` consumes the
    call and fires the injector *before* the budget check, so injected
    faults still fire (and win) past exhaustion; either way the call
    degrades to ``UNKNOWN`` — or raises under ``on_budget="fail"``.
    """
    governor = solver.governor
    stats = solver.stats
    kind = directive[0] if directive is not None else None
    stats.sat_calls += 1
    if solver.memo is not None:
        stats.memo_misses += 1
    governor.events.solver_calls += 1
    governor._calls_used += 1
    if injector is not None:
        injector.calls += 1
    if kind is not None:
        injector.injected[kind] += 1
        governor.events.injected_faults += 1
        if kind == "timeout":
            stats.budget_hits += 1
    else:
        governor.events.budget_hits += 1
        stats.budget_hits += 1
    if not governor.degrade:
        raise BudgetExceeded(
            f"solver-call budget of {governor.solver_call_budget} exhausted",
            resource="solver-calls",
        )
    stats.unknown_verdicts += 1
    governor.events.unknown_verdicts += 1


def _decide_residual_parallel(
    residual: List[Tuple[int, Condition]],
    solver: ConditionSolver,
    stats: EvalStats,
    jobs: int,
    executor: Optional[ParallelExecutor],
) -> Dict[int, Verdict]:
    """Decide residual classes across a worker pool; fold everything back."""
    governor = solver.governor
    injector, directives = _residual_directives(governor, len(residual))
    budget = governor.remaining_calls() if governor is not None else None
    decided_n = len(residual) if budget is None else min(budget, len(residual))

    executor = executor or SupervisedExecutor(jobs)
    session = session_for(solver.memo, executor)
    reads = reads_allowed(governor)
    if session is not None:
        session.enable_parent_reads(reads)
        store_hits_before = session.store.hits

    def _initargs() -> tuple:
        """Initializer args with a *live* governor snapshot.

        Also the supervised executor's ``refresh_initargs`` hook: the
        spec serializes the deadline as *remaining* seconds, so a worker
        respawned for a retry must re-snapshot from the parent's live
        governor — a stale spec would re-arm the full original deadline
        and let a retried task outlive the query's wall-clock budget.
        """
        spec = GovernorSpec.from_governor(governor)
        if spec is not None:
            # The parent enforces the call budget globally (each worker
            # would otherwise spend the whole remainder) and replaces the
            # plan with the per-shard schedule computed above.
            spec = replace(spec, solver_call_budget=None, fault_plan=None)
        return (
            solver.domains,
            spec,
            solver.enumeration_limit,
            solver.memo is not None,
            solver.fast_path,
            session.handle(reads) if session is not None else None,
        )

    # Canonical-class-group sharding: order the in-budget residual by
    # the classes' c-variable footprint so one shard holds conditions
    # over the same variables (shared interning, adjacent memo keys),
    # then cut contiguous balanced runs — one pickle per shard instead
    # of one per class.  Each entry carries its own precomputed fault
    # directive, so *any* partition preserves the jobs=1 schedule; the
    # class index keys the verdict fan-out, so the grouping order never
    # reaches the output.
    def _locality_key(entry):
        return (
            tuple(sorted(v.name for v in entry[1].cvariables())),
            entry[0],
        )

    entries = sorted(
        (
            (residual[r][0], residual[r][1], directives[r])
            for r in range(decided_n)
        ),
        key=_locality_key,
    )
    shards = balanced_shards(entries, jobs)
    start = time.perf_counter()
    results = executor.map(
        run_prune_shard,
        shards,
        initializer=init_prune_worker,
        initargs=_initargs(),
        refresh_initargs=_initargs,
    )
    wall = time.perf_counter() - start
    fold_failures(executor, governor=governor, stats=stats)

    verdicts: Dict[int, Verdict] = {}
    first_error: Optional[Tuple[int, BaseException]] = None
    injected_totals = {"timeout": 0, "failure": 0, "oversize": 0}
    for shard, result in zip(shards, results):
        if isinstance(result, TaskLost):
            # Unrecoverable shard under on_worker_loss="degrade": every
            # class in it degrades to UNKNOWN — member tuples are kept,
            # never pruned on missing evidence (sound, like budget
            # exhaustion; the loss is visible in the failure counters).
            for class_index, _cond, _kind in shard:
                verdicts[class_index] = Verdict.UNKNOWN
            continue
        error = result.get("error")
        if error is not None and (first_error is None or error[0] < first_error[0]):
            first_error = error
        for class_index, name in result["verdicts"]:
            verdicts[class_index] = Verdict[name]
        worker_stats = result["stats"]
        for field in _FOLD_FIELDS:
            setattr(
                solver.stats, field, getattr(solver.stats, field) + worker_stats[field]
            )
        stats.extra["parallel_cpu_seconds"] = (
            stats.extra.get("parallel_cpu_seconds", 0.0) + worker_stats["time_seconds"]
        )
        shared = result.get("shared_memo")
        if shared is not None:
            for field, value in shared.items():
                key = f"shared_memo_{field}"
                stats.extra[key] = stats.extra.get(key, 0) + value
        events = result.get("events")
        if events is not None and governor is not None:
            decided = len(result["verdicts"]) + (1 if error is not None else 0)
            governor.absorb(events, calls=decided)
        injected = result.get("injected")
        if injected is not None:
            for kind, n in injected.items():
                injected_totals[kind] += n

    # Keep the parent injector's sequence aligned with the serial path so
    # later phases inject on the same calls regardless of jobs.
    if injector is not None:
        injector.calls += decided_n
        for kind, n in injected_totals.items():
            injector.injected[kind] += n
    if first_error is not None:
        raise first_error[1]

    # Fold definite verdicts into the shared memo and per-solver cache;
    # UNKNOWN is kept-not-cached, exactly as in the serial path.
    for r in range(decided_n):
        class_index, condition = residual[r]
        verdict = verdicts[class_index]
        if verdict is Verdict.UNKNOWN:
            continue
        result = verdict is Verdict.SAT
        if solver.memo is not None:
            canon = solver.memo.canonical(condition)
            if not isinstance(canon, (TrueCond, FalseCond)):
                solver.memo.put(solver.memo.sat_key(canon, solver.domains), result)
        solver._sat_cache[condition] = result

    for r in range(decided_n, len(residual)):
        _emulate_over_budget(solver, injector, directives[r])
        verdicts[residual[r][0]] = Verdict.UNKNOWN

    stats.extra["parallel_shards"] = stats.extra.get("parallel_shards", 0) + len(shards)
    stats.extra["parallel_wall_seconds"] = (
        stats.extra.get("parallel_wall_seconds", 0.0) + wall
    )
    stats.extra["parallel_tasks"] = (
        stats.extra.get("parallel_tasks", 0) + executor.last_tasks
    )
    stats.extra["ipc_bytes"] = (
        stats.extra.get("ipc_bytes", 0) + executor.last_ipc_bytes
    )
    if session is not None:
        # Parent-side backing hits (probe phase and verdict fold-back).
        stats.extra["shared_memo_hits"] = stats.extra.get("shared_memo_hits", 0) + (
            session.store.hits - store_hits_before
        )
    return verdicts


def prune_batched(
    table: CTable,
    solver: ConditionSolver,
    stats: Optional[EvalStats] = None,
    jobs: int = 1,
    executor: Optional[ParallelExecutor] = None,
) -> CTable:
    """Batched phase-3 prune; drop-in replacement for the per-tuple loop.

    ``jobs=1`` decides residual classes inline through the parent solver
    (one governed call per class, in class order); ``jobs>1`` shards
    them across a pool.  Either way the verdict fan-out walks the table
    in original order, so the result is identical to — and with
    duplicates present, strictly cheaper than — the per-tuple pruner.
    """
    stats = stats if stats is not None else EvalStats()
    governor = solver.governor
    if governor is not None:
        governor.ensure_started()
    classes, per_tuple = group_classes(table, solver)

    verdicts: Dict[int, Verdict] = {}
    residual: List[Tuple[int, Condition]] = []
    for class_index, (rep, _members) in enumerate(classes):
        probe = solver.sat_verdict_cached(rep)
        if probe is None:
            residual.append((class_index, rep))
        else:
            verdicts[class_index] = probe

    if residual:
        if jobs <= 1 or len(residual) == 1:
            for class_index, rep in residual:
                verdicts[class_index] = solver.sat_verdict(rep)
        else:
            verdicts.update(
                _decide_residual_parallel(residual, solver, stats, jobs, executor)
            )

    by_tuple: Dict[int, Verdict] = {}
    for class_index, (_rep, members) in enumerate(classes):
        verdict = verdicts[class_index]
        for i in members:
            by_tuple[i] = verdict

    per_tuple_set = set(per_tuple)
    out = CTable(table.name, table.schema)
    for i, tup in enumerate(table):
        verdict = (
            solver.sat_verdict(tup.condition) if i in per_tuple_set else by_tuple[i]
        )
        if verdict is Verdict.UNSAT:
            stats.tuples_pruned += 1
            continue
        if verdict is Verdict.UNKNOWN:
            stats.unknown_kept += 1
        out.add(tup)
    return out
