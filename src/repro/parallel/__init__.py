"""Batched and multiprocess execution for the evaluation pipeline.

Two independent levers, both off (``jobs=1``) by default:

* **batched pruning** (:func:`prune_batched`) — group a c-table by
  canonical condition form so each equivalence class is decided once,
  then shard the residual undecided classes across a worker pool;
* **shard execution** (:class:`ParallelExecutor`) — fan independent
  per-prefix queries and per-constraint verification ladders across the
  same pool with deterministic merge order;
* **supervised execution** (:class:`SupervisedExecutor`) — the
  production default for ``jobs > 1``: worker crash detection, per-task
  wall-clock timeouts, deterministic retry with backoff, and inline
  quarantine of unrecoverable tasks, keeping results byte-identical to
  the serial path (see ``docs/ROBUSTNESS.md``).

See ``docs/PERFORMANCE.md`` for the design and the soundness argument
for cross-process memo fold-back.
"""

from .batch import group_classes, prune_batched
from .executor import ParallelExecutor, inline_state_guard
from .spec import GovernorSpec, ScheduledFaultInjector, fault_directive
from .supervisor import SupervisedExecutor, TaskFailures, TaskLost, fold_failures

__all__ = [
    "ParallelExecutor",
    "SupervisedExecutor",
    "TaskFailures",
    "TaskLost",
    "fold_failures",
    "inline_state_guard",
    "GovernorSpec",
    "ScheduledFaultInjector",
    "fault_directive",
    "group_classes",
    "prune_batched",
]
