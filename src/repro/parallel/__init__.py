"""Batched and multiprocess execution for the evaluation pipeline.

Two independent levers, both off (``jobs=1``) by default:

* **batched pruning** (:func:`prune_batched`) — group a c-table by
  canonical condition form so each equivalence class is decided once,
  then shard the residual undecided classes across a worker pool;
* **shard execution** (:class:`ParallelExecutor`) — fan independent
  per-prefix queries and per-constraint verification ladders across the
  same pool with deterministic merge order.

See ``docs/PERFORMANCE.md`` for the design and the soundness argument
for cross-process memo fold-back.
"""

from .batch import group_classes, prune_batched
from .executor import ParallelExecutor
from .spec import GovernorSpec, ScheduledFaultInjector, fault_directive

__all__ = [
    "ParallelExecutor",
    "GovernorSpec",
    "ScheduledFaultInjector",
    "fault_directive",
    "group_classes",
    "prune_batched",
]
