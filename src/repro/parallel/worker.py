"""Module-level worker functions for the process pool.

Everything here must be importable by name in a worker process (the
``multiprocessing`` pickling contract), so the functions live at module
level and per-worker state travels through pool initializers into the
module-global ``_*_STATE`` dicts.

Three worker families:

* **prune workers** — decide a shard of residual canonical condition
  classes (:mod:`repro.parallel.batch`).  Each worker builds its own
  :class:`~repro.solver.interface.ConditionSolver` over the pickled
  :class:`~repro.solver.domains.DomainMap`, governed by the parent's
  :class:`~repro.parallel.spec.GovernorSpec` and the shard's
  precomputed fault schedule;
* **pattern workers** — run independent per-prefix failure-pattern
  queries over a shipped reachability c-table
  (:meth:`~repro.network.reachability.ReachabilityAnalyzer.under_patterns`);
* **verify workers** — run the relative-complete ladder on independent
  target constraints
  (:meth:`~repro.verify.verifier.RelativeCompleteVerifier.verify_many`).

Workers return plain picklable records (verdict names, c-tables, stats
dicts); all folding into shared state — the parent's
:class:`~repro.solver.memo.MemoTable`, governor ledger, and
:class:`~repro.engine.stats.EvalStats` — happens in the parent, in
deterministic task order.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

from .. import clock as _clock
from ..robustness.errors import BudgetExceeded, ConditionTooLarge, SolverFailure
from ..solver.interface import ConditionSolver, SolverStats
from ..solver.memo import MemoTable
from .shared_memo import SharedVerdictStore, StoreHandle
from .spec import GovernorSpec, ScheduledFaultInjector

__all__ = [
    "solver_stats_dict",
    "init_prune_worker",
    "run_prune_shard",
    "init_pattern_worker",
    "run_pattern_task",
    "run_pattern_shard",
    "init_verify_worker",
    "run_verify_task",
    "run_verify_shard",
    "INLINE_STATE_DICTS",
]

#: Counters a worker reports back; ``time_seconds`` is kept separate so
#: the parent can account worker CPU apart from its own wall-clock.
_STAT_FIELDS = (
    "sat_calls",
    "implication_calls",
    "cache_hits",
    "enumeration_used",
    "dpll_used",
    "unknown_verdicts",
    "budget_hits",
    "fallbacks",
    "memo_hits",
    "memo_misses",
    "canonical_collapses",
    "fast_path_hits",
    "fast_path_misses",
    "time_seconds",
)


def solver_stats_dict(stats: SolverStats) -> Dict[str, float]:
    """Flatten a worker's :class:`SolverStats` for the return trip."""
    return {name: getattr(stats, name) for name in _STAT_FIELDS}


#: Open shared-verdict-store attachments, keyed by log path, so one
#: worker process attaches once however many shards it runs.  Guarded by
#: :data:`INLINE_STATE_DICTS` — an inline (in-parent) run must not leave
#: a dangling attachment behind.
_STORE_CACHE: Dict[str, SharedVerdictStore] = {}


def _open_store(handle: Optional[StoreHandle]) -> Optional[SharedVerdictStore]:
    """Attach to the parent's shared verdict log (cached per path).

    A failed attach (the parent already tore the log down) degrades to
    ``None`` — the worker just loses cross-process sharing.
    """
    if handle is None:
        return None
    store = _STORE_CACHE.get(handle.path)
    if store is None:
        store = handle.open()
        if store is None:
            return None
        _STORE_CACHE[handle.path] = store
    store.reads = handle.reads
    return store


def _worker_memo(
    memo_enabled: bool,
    store: Optional[SharedVerdictStore] = None,
    seed: Optional[Dict] = None,
) -> Optional[MemoTable]:
    """A worker-private memo table (processes cannot share the parent's).

    When the parent runs with memoization disabled (``--no-memo``) the
    workers honor that: no canonicalization, no verdict sharing — and no
    shared store either.  With a store attached, the memo's definite
    verdicts stream to the shared log (writer observer) and, when the
    parent enabled reads, local misses poll the log before solving.

    ``seed`` is the parent memo's entry dict, shipped through the
    initializer for ungoverned runs: under ``fork`` it arrives by
    copy-on-write (no pickling, no log round-trip), so the worker starts
    with the serial path's warm memo instead of re-deriving it record by
    record through the store.  Seeding happens *before* the store
    observer attaches — the session already seeded the log with the same
    entries, so re-appending them would only duplicate dedup work.
    Condition equality is structural, so parent-built keys match the
    worker's own canonicalizations.
    """
    if not memo_enabled:
        return None
    memo = MemoTable()
    if seed:
        memo._entries.update(seed)
    if store is not None:
        memo.add_observer(store.append_key)
        if store.reads:
            memo.backing = store.lookup_key
    return memo


def _store_deltas(
    store: Optional[SharedVerdictStore], before: Tuple[int, int]
) -> Dict[str, int]:
    """Hit/write deltas since ``before`` — one worker process runs many
    shards against one cumulative store, so absolutes would double-count
    when the parent folds every shard's report."""
    if store is None:
        return {"hits": 0, "writes": 0}
    return {"hits": store.hits - before[0], "writes": store.writes - before[1]}


def _store_marks(store: Optional[SharedVerdictStore]) -> Tuple[int, int]:
    return (store.hits, store.writes) if store is not None else (0, 0)


def _use_worker_clock() -> None:
    """Account this worker's sql/solver phases on the CPU clock.

    A worker's ``perf_counter`` keeps ticking while the process is
    descheduled, so on a timeshared host the per-worker phase times sum
    to far more than the actual work (the historical "summed sql_s
    exceeds wall_s" benchmark artifact).  ``process_time`` measures only
    this process's CPU, which *is* additive across workers.  The parent
    keeps wall time — :data:`INLINE_STATE_DICTS` includes the clock so
    inline initializer runs restore it.
    """
    _clock._CLOCK["now"] = time.process_time


# -- batched prune shards ---------------------------------------------------

_PRUNE_STATE: Dict[str, Any] = {}


def init_prune_worker(domains, spec: Optional[GovernorSpec], enumeration_limit: int,
                      memo_enabled: bool, fast_path: bool = True,
                      store: Optional[StoreHandle] = None) -> None:
    _use_worker_clock()
    _PRUNE_STATE.update(
        domains=domains,
        spec=spec,
        enumeration_limit=enumeration_limit,
        memo_enabled=memo_enabled,
        fast_path=fast_path,
        store=_open_store(store),
    )


def run_prune_shard(shard: List[Tuple[int, Any, Optional[tuple]]]) -> Dict[str, Any]:
    """Decide one shard of ``(global_index, condition, fault directive)``.

    Returns the per-class verdict names plus the worker's solver stats
    and governor events, all keyed for deterministic parent-side
    folding.  ``UNKNOWN`` is reported but (by construction) never enters
    any cache — the worker's memo dies with the process and the parent
    only folds definite verdicts.
    """
    spec: Optional[GovernorSpec] = _PRUNE_STATE["spec"]
    injector = None
    governor = None
    if spec is not None:
        injector = ScheduledFaultInjector([kind for _, _, kind in shard])
        governor = spec.build(injector)
    store: Optional[SharedVerdictStore] = _PRUNE_STATE.get("store")
    marks = _store_marks(store)
    solver = ConditionSolver(
        _PRUNE_STATE["domains"],
        _PRUNE_STATE["enumeration_limit"],
        governor=governor,
        memo=_worker_memo(_PRUNE_STATE["memo_enabled"], store),
        fast_path=_PRUNE_STATE.get("fast_path", True),
    )
    verdicts = []
    error = None
    for index, condition, _kind in shard:
        try:
            verdicts.append((index, solver.sat_verdict(condition).name))
        except (BudgetExceeded, SolverFailure, ConditionTooLarge) as exc:
            # on_budget="fail": ship the failure home instead of letting
            # the pool surface an arbitrary shard's exception first; the
            # parent re-raises the lowest class index deterministically.
            error = (index, exc)
            break
    return {
        "verdicts": verdicts,
        "error": error,
        "stats": solver_stats_dict(solver.stats),
        "events": governor.events.as_dict() if governor is not None else None,
        "injected": dict(injector.injected) if injector is not None else None,
        "shared_memo": _store_deltas(store, marks),
    }


# -- per-prefix pattern queries ---------------------------------------------

_PATTERN_STATE: Dict[str, Any] = {}


def init_pattern_worker(reach_db, domains, per_flow: bool,
                        spec: Optional[GovernorSpec], enumeration_limit: int,
                        memo_enabled: bool, fast_path: bool = True,
                        optimize: bool = False,
                        store: Optional[StoreHandle] = None,
                        memo_seed: Optional[Dict] = None,
                        storage=None) -> None:
    from ..engine.storage import Storage

    _use_worker_clock()

    precheck = None
    if optimize:
        # Worker-private static precheck (caches cannot cross processes);
        # the evaluator stands it down itself when the rebuilt governor
        # carries a fault injector.
        from ..analysis.optimize import ConditionPrecheck

        precheck = ConditionPrecheck(domains)
    opened = _open_store(store)
    _PATTERN_STATE.update(
        reach_db=reach_db,
        # Prefer the parent's already-indexed storage (free under fork);
        # rebuild only when it was not shipped.
        storage=storage if storage is not None else Storage(reach_db),
        domains=domains,
        per_flow=per_flow,
        spec=spec,
        enumeration_limit=enumeration_limit,
        memo_enabled=memo_enabled,
        store=opened,
        memo=_worker_memo(memo_enabled, opened, memo_seed),
        fast_path=fast_path,
        precheck=precheck,
    )


def run_pattern_task(task) -> Dict[str, Any]:
    """Run one failure-pattern query; ``task`` is a ``PatternQuery``.

    Governance is rebuilt per task (fresh fault-injector schedule per
    query), so each query's faults are a deterministic function of the
    query alone, independent of worker count and assignment.
    """
    from ..network.reachability import run_pattern_query
    from ..robustness.faultinject import FaultInjector

    spec: Optional[GovernorSpec] = _PATTERN_STATE["spec"]
    governor = None
    if spec is not None:
        injector = FaultInjector(spec.fault_plan) if spec.fault_plan else None
        governor = spec.build(injector)
    solver = ConditionSolver(
        _PATTERN_STATE["domains"],
        _PATTERN_STATE["enumeration_limit"],
        governor=governor,
        memo=_PATTERN_STATE["memo"],  # warm within one worker across tasks
        fast_path=_PATTERN_STATE.get("fast_path", True),
    )
    table, stats = run_pattern_query(
        _PATTERN_STATE["reach_db"],
        solver,
        _PATTERN_STATE["per_flow"],
        task,
        storage=_PATTERN_STATE["storage"],
        precheck=_PATTERN_STATE.get("precheck"),
    )
    return {
        "table": table,
        "stats": stats,
        "solver_stats": solver_stats_dict(solver.stats),
        "events": governor.events.as_dict() if governor is not None else None,
    }


def run_pattern_shard(shard: List[Any]) -> Dict[str, Any]:
    """Run a batch of pattern queries in one task message.

    Coarse sharding: one pickle ships N queries and one reply ships N
    results, cutting the per-task IPC that dominated fine-grained
    fan-out.  Each query still gets its own rebuilt governor and its own
    deterministic fault schedule (``run_pattern_task``), so faults stay
    a pure function of the query — independent of sharding and worker
    count.  The shared-store counters are reported as shard deltas.
    """
    store: Optional[SharedVerdictStore] = _PATTERN_STATE.get("store")
    marks = _store_marks(store)
    return {
        "results": [run_pattern_task(task) for task in shard],
        "shared_memo": _store_deltas(store, marks),
    }


# -- relative-complete verification ladders ---------------------------------

_VERIFY_STATE: Dict[str, Any] = {}


def init_verify_worker(known, schemas, column_domains, generic_rows,
                       budget_retries, budget_growth, domains,
                       enumeration_limit: int, spec: Optional[GovernorSpec],
                       memo_enabled: bool, fast_path: bool = True,
                       store: Optional[StoreHandle] = None,
                       update=None, state=None,
                       memo_seed=None) -> None:
    _use_worker_clock()
    opened = _open_store(store)
    _VERIFY_STATE.update(
        known=known,
        schemas=schemas,
        column_domains=column_domains,
        generic_rows=generic_rows,
        budget_retries=budget_retries,
        budget_growth=budget_growth,
        domains=domains,
        enumeration_limit=enumeration_limit,
        spec=spec,
        memo_enabled=memo_enabled,
        store=opened,
        memo=_worker_memo(memo_enabled, opened, memo_seed),
        fast_path=fast_path,
        update=update,
        state=state,
    )


#: Module-global state dicts the executors must snapshot/restore when an
#: initializer runs *in the parent* (the jobs=1 inline path and the
#: supervised executor's quarantine path) — without the guard, inline
#: runs would leak worker state into the parent across calls.  The store
#: cache is guarded too: inline attachments must not outlive the call
#: (the dropped store object closes its descriptors on GC).
INLINE_STATE_DICTS = (
    _PRUNE_STATE,
    _PATTERN_STATE,
    _VERIFY_STATE,
    _STORE_CACHE,
    _clock._CLOCK,
)


def run_verify_task(task) -> Any:
    """Run the ladder on one ``(target, update, state)`` task."""
    from ..robustness.faultinject import FaultInjector
    from ..verify.verifier import RelativeCompleteVerifier

    target, update, state = task
    spec: Optional[GovernorSpec] = _VERIFY_STATE["spec"]
    governor = None
    if spec is not None:
        injector = FaultInjector(spec.fault_plan) if spec.fault_plan else None
        governor = spec.build(injector)
    solver = ConditionSolver(
        _VERIFY_STATE["domains"],
        _VERIFY_STATE["enumeration_limit"],
        governor=governor,
        memo=_VERIFY_STATE["memo"],
        fast_path=_VERIFY_STATE.get("fast_path", True),
    )
    verifier = RelativeCompleteVerifier(
        _VERIFY_STATE["known"],
        solver,
        schemas=_VERIFY_STATE["schemas"],
        column_domains=_VERIFY_STATE["column_domains"],
        generic_rows=_VERIFY_STATE["generic_rows"],
        budget_retries=_VERIFY_STATE["budget_retries"],
        budget_growth=_VERIFY_STATE["budget_growth"],
    )
    return verifier.verify(target, update=update, state=state)


def run_verify_shard(shard: List[Any]) -> Dict[str, Any]:
    """Run a batch of ladder targets in one task message.

    The shared ``update``/``state`` pair ships once via the initializer
    (they are identical for every target of one ``verify_many`` call);
    the shard is just the bare targets.  Returns the verdicts in shard
    order plus shard-delta shared-store counters.
    """
    store: Optional[SharedVerdictStore] = _VERIFY_STATE.get("store")
    marks = _store_marks(store)
    update, state = _VERIFY_STATE.get("update"), _VERIFY_STATE.get("state")
    return {
        "verdicts": [run_verify_task((target, update, state)) for target in shard],
        "shared_memo": _store_deltas(store, marks),
    }
