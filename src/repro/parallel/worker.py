"""Module-level worker functions for the process pool.

Everything here must be importable by name in a worker process (the
``multiprocessing`` pickling contract), so the functions live at module
level and per-worker state travels through pool initializers into the
module-global ``_*_STATE`` dicts.

Three worker families:

* **prune workers** — decide a shard of residual canonical condition
  classes (:mod:`repro.parallel.batch`).  Each worker builds its own
  :class:`~repro.solver.interface.ConditionSolver` over the pickled
  :class:`~repro.solver.domains.DomainMap`, governed by the parent's
  :class:`~repro.parallel.spec.GovernorSpec` and the shard's
  precomputed fault schedule;
* **pattern workers** — run independent per-prefix failure-pattern
  queries over a shipped reachability c-table
  (:meth:`~repro.network.reachability.ReachabilityAnalyzer.under_patterns`);
* **verify workers** — run the relative-complete ladder on independent
  target constraints
  (:meth:`~repro.verify.verifier.RelativeCompleteVerifier.verify_many`).

Workers return plain picklable records (verdict names, c-tables, stats
dicts); all folding into shared state — the parent's
:class:`~repro.solver.memo.MemoTable`, governor ledger, and
:class:`~repro.engine.stats.EvalStats` — happens in the parent, in
deterministic task order.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..robustness.errors import BudgetExceeded, ConditionTooLarge, SolverFailure
from ..solver.interface import ConditionSolver, SolverStats
from ..solver.memo import MemoTable
from .spec import GovernorSpec, ScheduledFaultInjector

__all__ = [
    "solver_stats_dict",
    "init_prune_worker",
    "run_prune_shard",
    "init_pattern_worker",
    "run_pattern_task",
    "init_verify_worker",
    "run_verify_task",
    "INLINE_STATE_DICTS",
]

#: Counters a worker reports back; ``time_seconds`` is kept separate so
#: the parent can account worker CPU apart from its own wall-clock.
_STAT_FIELDS = (
    "sat_calls",
    "implication_calls",
    "cache_hits",
    "enumeration_used",
    "dpll_used",
    "unknown_verdicts",
    "budget_hits",
    "fallbacks",
    "memo_hits",
    "memo_misses",
    "canonical_collapses",
    "fast_path_hits",
    "fast_path_misses",
    "time_seconds",
)


def solver_stats_dict(stats: SolverStats) -> Dict[str, float]:
    """Flatten a worker's :class:`SolverStats` for the return trip."""
    return {name: getattr(stats, name) for name in _STAT_FIELDS}


def _worker_memo(memo_enabled: bool) -> Optional[MemoTable]:
    """A worker-private memo table (processes cannot share the parent's).

    When the parent runs with memoization disabled (``--no-memo``) the
    workers honor that: no canonicalization, no verdict sharing.
    """
    return MemoTable() if memo_enabled else None


# -- batched prune shards ---------------------------------------------------

_PRUNE_STATE: Dict[str, Any] = {}


def init_prune_worker(domains, spec: Optional[GovernorSpec], enumeration_limit: int,
                      memo_enabled: bool, fast_path: bool = True) -> None:
    _PRUNE_STATE.update(
        domains=domains,
        spec=spec,
        enumeration_limit=enumeration_limit,
        memo_enabled=memo_enabled,
        fast_path=fast_path,
    )


def run_prune_shard(shard: List[Tuple[int, Any, Optional[tuple]]]) -> Dict[str, Any]:
    """Decide one shard of ``(global_index, condition, fault directive)``.

    Returns the per-class verdict names plus the worker's solver stats
    and governor events, all keyed for deterministic parent-side
    folding.  ``UNKNOWN`` is reported but (by construction) never enters
    any cache — the worker's memo dies with the process and the parent
    only folds definite verdicts.
    """
    spec: Optional[GovernorSpec] = _PRUNE_STATE["spec"]
    injector = None
    governor = None
    if spec is not None:
        injector = ScheduledFaultInjector([kind for _, _, kind in shard])
        governor = spec.build(injector)
    solver = ConditionSolver(
        _PRUNE_STATE["domains"],
        _PRUNE_STATE["enumeration_limit"],
        governor=governor,
        memo=_worker_memo(_PRUNE_STATE["memo_enabled"]),
        fast_path=_PRUNE_STATE.get("fast_path", True),
    )
    verdicts = []
    error = None
    for index, condition, _kind in shard:
        try:
            verdicts.append((index, solver.sat_verdict(condition).name))
        except (BudgetExceeded, SolverFailure, ConditionTooLarge) as exc:
            # on_budget="fail": ship the failure home instead of letting
            # the pool surface an arbitrary shard's exception first; the
            # parent re-raises the lowest class index deterministically.
            error = (index, exc)
            break
    return {
        "verdicts": verdicts,
        "error": error,
        "stats": solver_stats_dict(solver.stats),
        "events": governor.events.as_dict() if governor is not None else None,
        "injected": dict(injector.injected) if injector is not None else None,
    }


# -- per-prefix pattern queries ---------------------------------------------

_PATTERN_STATE: Dict[str, Any] = {}


def init_pattern_worker(reach_db, domains, per_flow: bool,
                        spec: Optional[GovernorSpec], enumeration_limit: int,
                        memo_enabled: bool, fast_path: bool = True,
                        optimize: bool = False) -> None:
    from ..engine.storage import Storage

    precheck = None
    if optimize:
        # Worker-private static precheck (caches cannot cross processes);
        # the evaluator stands it down itself when the rebuilt governor
        # carries a fault injector.
        from ..analysis.optimize import ConditionPrecheck

        precheck = ConditionPrecheck(domains)
    _PATTERN_STATE.update(
        reach_db=reach_db,
        storage=Storage(reach_db),
        domains=domains,
        per_flow=per_flow,
        spec=spec,
        enumeration_limit=enumeration_limit,
        memo_enabled=memo_enabled,
        memo=_worker_memo(memo_enabled),
        fast_path=fast_path,
        precheck=precheck,
    )


def run_pattern_task(task) -> Dict[str, Any]:
    """Run one failure-pattern query; ``task`` is a ``PatternQuery``.

    Governance is rebuilt per task (fresh fault-injector schedule per
    query), so each query's faults are a deterministic function of the
    query alone, independent of worker count and assignment.
    """
    from ..network.reachability import run_pattern_query
    from ..robustness.faultinject import FaultInjector

    spec: Optional[GovernorSpec] = _PATTERN_STATE["spec"]
    governor = None
    if spec is not None:
        injector = FaultInjector(spec.fault_plan) if spec.fault_plan else None
        governor = spec.build(injector)
    solver = ConditionSolver(
        _PATTERN_STATE["domains"],
        _PATTERN_STATE["enumeration_limit"],
        governor=governor,
        memo=_PATTERN_STATE["memo"],  # warm within one worker across tasks
        fast_path=_PATTERN_STATE.get("fast_path", True),
    )
    table, stats = run_pattern_query(
        _PATTERN_STATE["reach_db"],
        solver,
        _PATTERN_STATE["per_flow"],
        task,
        storage=_PATTERN_STATE["storage"],
        precheck=_PATTERN_STATE.get("precheck"),
    )
    return {
        "table": table,
        "stats": stats,
        "solver_stats": solver_stats_dict(solver.stats),
        "events": governor.events.as_dict() if governor is not None else None,
    }


# -- relative-complete verification ladders ---------------------------------

_VERIFY_STATE: Dict[str, Any] = {}


def init_verify_worker(known, schemas, column_domains, generic_rows,
                       budget_retries, budget_growth, domains,
                       enumeration_limit: int, spec: Optional[GovernorSpec],
                       memo_enabled: bool, fast_path: bool = True) -> None:
    _VERIFY_STATE.update(
        known=known,
        schemas=schemas,
        column_domains=column_domains,
        generic_rows=generic_rows,
        budget_retries=budget_retries,
        budget_growth=budget_growth,
        domains=domains,
        enumeration_limit=enumeration_limit,
        spec=spec,
        memo_enabled=memo_enabled,
        memo=_worker_memo(memo_enabled),
        fast_path=fast_path,
    )


#: Module-global state dicts the executors must snapshot/restore when an
#: initializer runs *in the parent* (the jobs=1 inline path and the
#: supervised executor's quarantine path) — without the guard, inline
#: runs would leak worker state into the parent across calls.
INLINE_STATE_DICTS = (_PRUNE_STATE, _PATTERN_STATE, _VERIFY_STATE)


def run_verify_task(task) -> Any:
    """Run the ladder on one ``(target, update, state)`` task."""
    from ..robustness.faultinject import FaultInjector
    from ..verify.verifier import RelativeCompleteVerifier

    target, update, state = task
    spec: Optional[GovernorSpec] = _VERIFY_STATE["spec"]
    governor = None
    if spec is not None:
        injector = FaultInjector(spec.fault_plan) if spec.fault_plan else None
        governor = spec.build(injector)
    solver = ConditionSolver(
        _VERIFY_STATE["domains"],
        _VERIFY_STATE["enumeration_limit"],
        governor=governor,
        memo=_VERIFY_STATE["memo"],
        fast_path=_VERIFY_STATE.get("fast_path", True),
    )
    verifier = RelativeCompleteVerifier(
        _VERIFY_STATE["known"],
        solver,
        schemas=_VERIFY_STATE["schemas"],
        column_domains=_VERIFY_STATE["column_domains"],
        generic_rows=_VERIFY_STATE["generic_rows"],
        budget_retries=_VERIFY_STATE["budget_retries"],
        budget_growth=_VERIFY_STATE["budget_growth"],
    )
    return verifier.verify(target, update=update, state=state)
