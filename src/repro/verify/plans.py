"""Verification of multi-step update plans.

Real networks change through *sequences* of updates (the paper's §5
motivation cites global WANs "undergoing frequent and increasingly
complicated updates"), and an invariant must hold not only at the end
but after **every intermediate step** — a plan that transiently removes
a firewall is unsafe even if the final state is compliant.

:func:`check_plan` verifies a constraint across all prefixes of an
update plan, each via the strongest available test:

* with only constraints known, each prefix is checked by folding the
  prefix's updates into the target (category ii applied per step);
* with the initial state available, each intermediate state is also
  checked directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..ctable.table import Database
from ..faurelog.rewrite import Deletion, Insertion, Update, apply_update
from ..solver.domains import Domain
from ..solver.interface import ConditionSolver
from .constraints import CheckResult, Constraint, Status
from .subsumption import SubsumptionVerdict
from .updates import check_with_update

__all__ = ["StepVerdict", "PlanReport", "check_plan"]


@dataclass
class StepVerdict:
    """Outcome after applying the plan's first ``step + 1`` operations."""

    step: int
    operation: str
    status: Status
    by_subsumption: bool = False
    detail: str = ""


@dataclass
class PlanReport:
    """Per-step verdicts plus the overall safety call."""

    steps: List[StepVerdict] = field(default_factory=list)

    @property
    def safe(self) -> bool:
        """True when every step is HOLDS."""
        return all(s.status is Status.HOLDS for s in self.steps)

    @property
    def first_unsafe_step(self) -> Optional[StepVerdict]:
        for step in self.steps:
            if step.status is not Status.HOLDS:
                return step
        return None

    def __str__(self) -> str:
        lines = []
        for s in self.steps:
            how = "subsumption" if s.by_subsumption else "direct"
            lines.append(f"  step {s.step} ({s.operation}): {s.status.value} [{how}]")
        verdict = "SAFE" if self.safe else "UNSAFE-OR-UNKNOWN"
        return f"plan {verdict}\n" + "\n".join(lines)


def check_plan(
    target: Constraint,
    plan: Update,
    known: Sequence[Constraint] = (),
    solver: Optional[ConditionSolver] = None,
    state: Optional[Database] = None,
    schemas: Optional[Dict[str, Sequence[str]]] = None,
    column_domains: Optional[Dict[str, Domain]] = None,
) -> PlanReport:
    """Verify the constraint after every prefix of the plan.

    Each step first tries the state-free category (ii) test (known
    constraints + the prefix of updates); on UNKNOWN it falls back to
    direct evaluation when ``state`` is supplied, else records UNKNOWN.
    """
    if solver is None:
        raise ValueError("a solver is required")
    report = PlanReport()
    operations = list(plan)
    for index in range(len(operations)):
        prefix = operations[: index + 1]
        op_text = str(operations[index])
        verdict: Optional[StepVerdict] = None
        if known:
            result = check_with_update(
                target,
                known,
                prefix,
                solver,
                schemas=schemas,
                column_domains=column_domains,
            )
            if result.verdict is SubsumptionVerdict.SUBSUMED:
                verdict = StepVerdict(
                    index, op_text, Status.HOLDS, by_subsumption=True
                )
        if verdict is None and state is not None:
            updated = apply_update(state, prefix)
            direct = target.check(updated, solver)
            verdict = StepVerdict(
                index,
                op_text,
                direct.status,
                by_subsumption=False,
                detail=str(direct),
            )
        if verdict is None:
            verdict = StepVerdict(index, op_text, Status.UNKNOWN)
        report.steps.append(verdict)
    return report
