"""Runtime constraint monitoring over a stream of network events.

The verification ladder answers one-shot questions; operators also want
the continuous version: as facts stream in (route announcements, new ACL
rows, discovered reachability), tell me *the moment* a constraint can be
violated — and in exactly which worlds.

:class:`ConstraintMonitor` maintains each constraint's panic relation
incrementally (via :class:`repro.faurelog.incremental.IncrementalEvaluator`)
and reports, per inserted fact, the *newly possible* violations with
their conditions.  Because the state is a c-table, the monitor
distinguishes "now violated in every world" from "violated only if the
unknowns land badly" — the partial-information alarm levels.

Constraints whose panic depends *negatively* on the streamed relation
cannot be maintained monotonically; the monitor rejects inserts into
such relations (model the retraction as a condition instead, per the
package docs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..ctable.condition import Condition, FALSE, disjoin
from ..ctable.table import Database
from ..solver.interface import ConditionSolver
from .constraints import Constraint, Status

__all__ = ["Alarm", "ConstraintMonitor"]


@dataclass
class Alarm:
    """One constraint's status change caused by an inserted fact."""

    constraint: str
    status: Status
    condition: Condition
    new_derivations: int

    def __str__(self) -> str:
        if self.status is Status.CONDITIONAL:
            return f"{self.constraint}: {self.status.value} [{self.condition}]"
        return f"{self.constraint}: {self.status.value}"


class ConstraintMonitor:
    """Continuously checks constraints as facts arrive."""

    def __init__(
        self,
        constraints: Sequence[Constraint],
        database: Database,
        solver: ConditionSolver,
    ):
        from ..faurelog.incremental import IncrementalEvaluator

        self.solver = solver
        # each evaluator owns an isolated copy of the state: incremental
        # index maintenance must see every insert go through it
        self._evaluators: List[Tuple[Constraint, IncrementalEvaluator]] = []
        for constraint in constraints:
            evaluator = IncrementalEvaluator(
                constraint.program, database.copy(), solver=solver
            )
            self._evaluators.append((constraint, evaluator))

    # -- status -------------------------------------------------------------

    def _status_of(self, evaluator) -> Tuple[Status, Condition]:
        panic = evaluator.table("panic")
        conditions = [t.condition for t in panic]
        if not conditions:
            return Status.HOLDS, FALSE
        combined = disjoin(conditions)
        if not self.solver.is_satisfiable(combined):
            return Status.HOLDS, FALSE
        if self.solver.is_valid(combined):
            from ..ctable.condition import TRUE

            return Status.VIOLATED, TRUE
        return Status.CONDITIONAL, combined

    def status(self) -> Dict[str, Status]:
        """Current status of every monitored constraint."""
        return {
            constraint.name: self._status_of(evaluator)[0]
            for constraint, evaluator in self._evaluators
        }

    # -- the event feed -------------------------------------------------------

    def insert(self, predicate: str, values: Sequence, condition=None) -> List[Alarm]:
        """Feed one fact; returns alarms for constraints that changed.

        An alarm is raised when a constraint gains new panic derivations
        (its violation worlds grew), with the fresh overall status.
        """
        from ..ctable.condition import TRUE

        condition = condition if condition is not None else TRUE
        alarms: List[Alarm] = []
        for constraint, evaluator in self._evaluators:
            if predicate not in evaluator.database:
                continue  # the constraint does not read this relation
            new = evaluator.insert(predicate, values, condition)
            if new:
                status, cond = self._status_of(evaluator)
                if status is not Status.HOLDS:
                    alarms.append(Alarm(constraint.name, status, cond, new))
        return alarms
