"""Counterexample extraction from conditional verdicts.

A CONDITIONAL check result says "the constraint is violated exactly in
the worlds satisfying this condition".  For an operator the useful next
step is one *concrete* such world: an assignment of every unknown, the
regular network state it induces, and confirmation that the constraint's
panic query really fires there.  This module extracts it — and, for
contrast, a compliant world when one exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..ctable.condition import Condition
from ..ctable.table import Database
from ..ctable.terms import Constant, CVariable
from ..ctable.worlds import instantiate_database
from ..faurelog.ast import Program
from ..solver.interface import ConditionSolver
from .baseline import GroundEvaluator
from .constraints import CheckResult, Constraint, Status

__all__ = ["Witness", "extract_witness", "extract_compliant_world"]

Row = Tuple[Constant, ...]


@dataclass
class Witness:
    """One concrete world exhibiting (or refuting) a violation."""

    assignment: Dict[CVariable, Constant]
    state: Dict[str, FrozenSet[Row]]
    violated: bool

    def describe(self) -> str:
        """A short human-readable account of the world."""
        lines = ["world:"]
        for var in sorted(self.assignment, key=lambda v: v.name):
            lines.append(f"  {var.name} = {self.assignment[var].value}")
        lines.append("state:")
        for name in sorted(self.state):
            rows = sorted(
                tuple(v.value for v in row) for row in self.state[name]
            )
            lines.append(f"  {name}: {rows}")
        lines.append(f"constraint {'VIOLATED' if self.violated else 'holds'} here")
        return "\n".join(lines)


def _world_for(
    condition: Condition,
    constraint: Constraint,
    database: Database,
    solver: ConditionSolver,
    expect_violation: bool,
) -> Optional[Witness]:
    # The model must cover every c-variable of the database, not just the
    # ones in the condition — unconstrained unknowns still need values.
    all_vars = sorted(
        set(database.cvariables()) | set(condition.cvariables()),
        key=lambda v: v.name,
    )
    if not solver.domains.all_finite(all_vars):
        raise ValueError(
            "witness extraction needs finite domains for every c-variable"
        )
    from ..solver.enumerate import iter_models

    for assignment in iter_models(condition, solver.domains, variables=all_vars):
        state = instantiate_database(database, assignment)
        ground = GroundEvaluator(state)
        violated = bool(ground.run(constraint.program).get("panic"))
        if violated == expect_violation:
            return Witness(assignment=dict(assignment), state=state, violated=violated)
    return None


def extract_witness(
    constraint: Constraint,
    database: Database,
    solver: ConditionSolver,
    result: Optional[CheckResult] = None,
) -> Optional[Witness]:
    """A concrete violating world, or ``None`` when the constraint holds.

    ``result`` may be a prior :meth:`Constraint.check` outcome to avoid
    re-evaluation; the returned witness is re-validated with the ground
    evaluator, so a non-None answer is a genuine counterexample.
    """
    if result is None:
        result = constraint.check(database, solver)
    if result.status is Status.HOLDS:
        return None
    return _world_for(
        result.violation_condition, constraint, database, solver, expect_violation=True
    )


def extract_compliant_world(
    constraint: Constraint,
    database: Database,
    solver: ConditionSolver,
    result: Optional[CheckResult] = None,
) -> Optional[Witness]:
    """A world where the constraint holds, or ``None`` if none exists."""
    if result is None:
        result = constraint.check(database, solver)
    if result.status is Status.VIOLATED:
        return None
    return _world_for(
        result.violation_condition.negate(),
        constraint,
        database,
        solver,
        expect_violation=False,
    )
