"""Category (ii) test: constraints + update information (§5).

When the update is also visible, fold it into the target constraint by
the Listing 4 rewrite (C′ holds before the update iff C holds after) and
re-run the category (i) subsumption machinery on C′.  Strictly more
powerful than category (i): the paper's T2 is unknown from the
constraints alone but decidable once the Lb update is known.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..faurelog.rewrite import Update, apply_update, rewrite_constraint
from ..solver.domains import Domain
from ..solver.interface import ConditionSolver
from .constraints import CheckResult, Constraint
from .subsumption import SubsumptionResult, check_subsumption

__all__ = ["rewrite_target", "check_with_update", "check_after_update_directly"]


def rewrite_target(target: Constraint, update: Update) -> Constraint:
    """The rewritten constraint C′ reflecting the update."""
    return Constraint(
        name=f"{target.name}'",
        program=rewrite_constraint(target.program, update),
        description=f"{target.name} with update folded in",
    )


def check_with_update(
    target: Constraint,
    known: Sequence[Constraint],
    update: Update,
    solver: ConditionSolver,
    schemas: Optional[Dict[str, Sequence[str]]] = None,
    column_domains: Optional[Dict[str, Domain]] = None,
    generic_rows: Optional[int] = None,
) -> SubsumptionResult:
    """Category (ii): subsumption of the update-rewritten target."""
    rewritten = rewrite_target(target, update)
    return check_subsumption(
        rewritten,
        known,
        solver,
        schemas=schemas,
        column_domains=column_domains,
        generic_rows=generic_rows,
    )


def check_after_update_directly(
    target: Constraint,
    database,
    update: Update,
    solver: ConditionSolver,
) -> CheckResult:
    """Reference check: materialize the update, evaluate the constraint.

    Requires the full network state — the information level *above* the
    relative-complete ladder; used as ground truth in tests and benches.
    """
    updated = apply_update(database, update)
    return target.check(updated, solver)
