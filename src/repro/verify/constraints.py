"""Constraints as 0-ary fauré-log queries (§5).

A network constraint is a fauré-log program deriving the 0-ary predicate
``panic``: if the query evaluates to ∅ the constraint holds; a derived
``panic`` signals violation.  Over a *partial* state the answer can be
conditional — panic derived under a satisfiable-but-not-valid condition
means the constraint holds in some possible worlds and fails in others.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..ctable.condition import Condition, FALSE, TRUE, disjoin
from ..ctable.table import Database
from ..faurelog.ast import Program
from ..faurelog.evaluation import evaluate
from ..faurelog.parser import parse_program
from ..solver.interface import ConditionSolver

__all__ = ["Constraint", "Status", "CheckResult"]


class Status(enum.Enum):
    """Outcome of checking a constraint against a (partial) state."""

    HOLDS = "holds"  # no possible world violates
    VIOLATED = "violated"  # every possible world violates
    CONDITIONAL = "conditional"  # violated exactly in the worlds of the condition
    UNKNOWN = "unknown"  # the test could not decide (needs more information)


@dataclass
class CheckResult:
    """Status plus the violation condition (for CONDITIONAL/VIOLATED)."""

    status: Status
    violation_condition: Condition = FALSE
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status is Status.HOLDS

    def __str__(self) -> str:
        if self.status is Status.CONDITIONAL:
            return f"{self.status.value} [{self.violation_condition}]"
        return self.status.value


@dataclass
class Constraint:
    """A named panic-query constraint over the network schema."""

    name: str
    program: Program
    description: str = ""

    @staticmethod
    def from_text(name: str, text: str, description: str = "") -> "Constraint":
        """Parse the program from fauré-log source."""
        return Constraint(name=name, program=parse_program(text), description=description)

    def check(
        self,
        database: Database,
        solver: ConditionSolver,
        target: str = "panic",
    ) -> CheckResult:
        """Direct evaluation against a (possibly partial) state.

        This is the *most informed* test — it requires the full c-table
        state.  The violation condition is the disjunction of derived
        panic conditions; HOLDS/VIOLATED are its unsat/valid collapses.
        """
        result = evaluate(self.program, database, solver=solver)
        conditions: List[Condition] = []
        if target in result:
            conditions = [t.condition for t in result.table(target)]
        if not conditions:
            return CheckResult(Status.HOLDS)
        combined = disjoin(conditions)
        if not solver.is_satisfiable(combined):
            return CheckResult(Status.HOLDS)
        if solver.is_valid(combined):
            return CheckResult(Status.VIOLATED, TRUE)
        return CheckResult(Status.CONDITIONAL, combined)
