"""Constraints as 0-ary fauré-log queries (§5).

A network constraint is a fauré-log program deriving the 0-ary predicate
``panic``: if the query evaluates to ∅ the constraint holds; a derived
``panic`` signals violation.  Over a *partial* state the answer can be
conditional — panic derived under a satisfiable-but-not-valid condition
means the constraint holds in some possible worlds and fails in others.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..ctable.condition import Condition, FALSE, TRUE, disjoin
from ..ctable.table import Database
from ..faurelog.ast import Program
from ..faurelog.evaluation import FaureEvaluator
from ..faurelog.parser import parse_program
from ..robustness.verdict import Trivalent, Verdict
from ..solver.interface import ConditionSolver

__all__ = ["Constraint", "Status", "CheckResult"]


class Status(enum.Enum):
    """Outcome of checking a constraint against a (partial) state."""

    HOLDS = "holds"  # no possible world violates
    VIOLATED = "violated"  # every possible world violates
    CONDITIONAL = "conditional"  # violated exactly in the worlds of the condition
    UNKNOWN = "unknown"  # the test could not decide (needs more information)
    # A resource budget ran out before the test finished: *not* a
    # verdict about the network — retry with a larger budget.  Distinct
    # from UNKNOWN, which means "needs more information".
    INCONCLUSIVE = "inconclusive"


@dataclass
class CheckResult:
    """Status plus the violation condition (for CONDITIONAL/VIOLATED)."""

    status: Status
    violation_condition: Condition = FALSE
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status is Status.HOLDS

    def __str__(self) -> str:
        if self.status is Status.CONDITIONAL:
            return f"{self.status.value} [{self.violation_condition}]"
        return self.status.value


@dataclass
class Constraint:
    """A named panic-query constraint over the network schema."""

    name: str
    program: Program
    description: str = ""

    @staticmethod
    def from_text(name: str, text: str, description: str = "") -> "Constraint":
        """Parse the program from fauré-log source."""
        return Constraint(name=name, program=parse_program(text), description=description)

    def check(
        self,
        database: Database,
        solver: ConditionSolver,
        target: str = "panic",
    ) -> CheckResult:
        """Direct evaluation against a (possibly partial) state.

        This is the *most informed* test — it requires the full c-table
        state.  The violation condition is the disjunction of derived
        panic conditions; HOLDS/VIOLATED are its unsat/valid collapses.

        Degradation is explicit, never silently wrong: if the fixpoint
        was cut short by a budget, or the solver cannot decide the
        combined condition, the result is ``INCONCLUSIVE`` — a partial
        fixpoint under-approximates the panic set, so "no panic found"
        does not mean "holds".  ``VIOLATED``/``CONDITIONAL`` from
        partial evidence remain sound in the violation direction (every
        derived panic is real) and carry a clarifying ``detail``.
        """
        evaluator = FaureEvaluator(database, solver=solver)
        result = evaluator.evaluate(self.program)
        partial = evaluator.partial
        conditions: List[Condition] = []
        if target in result:
            conditions = [t.condition for t in result.table(target)]
        if not conditions:
            if partial:
                return CheckResult(
                    Status.INCONCLUSIVE,
                    detail="fixpoint interrupted by budget; no panic derived so far",
                )
            return CheckResult(Status.HOLDS)
        combined = disjoin(conditions)
        sat = solver.sat_verdict(combined)
        if sat is Verdict.UNKNOWN:
            return CheckResult(
                Status.INCONCLUSIVE,
                combined,
                detail="solver budget exhausted on the violation condition",
            )
        if sat is Verdict.UNSAT:
            if partial:
                return CheckResult(
                    Status.INCONCLUSIVE,
                    detail="fixpoint interrupted by budget; derived panics unsatisfiable",
                )
            return CheckResult(Status.HOLDS)
        valid = solver.valid_verdict(combined)
        if valid is Trivalent.TRUE:
            detail = "derived from a partial fixpoint" if partial else ""
            return CheckResult(Status.VIOLATED, TRUE, detail=detail)
        if valid is Trivalent.UNKNOWN:
            return CheckResult(
                Status.INCONCLUSIVE,
                combined,
                detail="solver budget exhausted on the validity check",
            )
        if partial:
            return CheckResult(
                Status.INCONCLUSIVE,
                combined,
                detail="fixpoint interrupted by budget; violation condition is a lower bound",
            )
        return CheckResult(Status.CONDITIONAL, combined)
