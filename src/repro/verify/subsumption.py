"""Category (i) test: constraint subsumption (§5).

With only the constraint *definitions* visible — no network state, no
update — the one opportunity is to show the target constraint is
subsumed by constraints already known to hold.  Subsumption of panic
queries is program containment, decided here by the fauré-log
freeze-and-evaluate reduction of :mod:`repro.faurelog.containment`.

The test is relative-complete: ``SUBSUMED`` is definitive; ``UNKNOWN``
means "more information needed" — hand the problem to the category (ii)
test once the update is known, or to direct checking once the state is.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..faurelog.ast import Program
from ..faurelog.containment import ContainmentResult, contains
from ..solver.domains import Domain
from ..solver.interface import ConditionSolver
from .constraints import Constraint

__all__ = ["SubsumptionVerdict", "SubsumptionResult", "check_subsumption"]


class SubsumptionVerdict(enum.Enum):
    SUBSUMED = "subsumed"  # target holds whenever the known constraints do
    UNKNOWN = "unknown"  # not shown — more information needed


@dataclass
class SubsumptionResult:
    verdict: SubsumptionVerdict
    containment: Optional[ContainmentResult] = None

    @property
    def ok(self) -> bool:
        return self.verdict is SubsumptionVerdict.SUBSUMED

    def __str__(self) -> str:
        return self.verdict.value


def check_subsumption(
    target: Constraint,
    known: Sequence[Constraint],
    solver: ConditionSolver,
    schemas: Optional[Dict[str, Sequence[str]]] = None,
    column_domains: Optional[Dict[str, Domain]] = None,
    generic_rows: Optional[int] = None,
) -> SubsumptionResult:
    """Does the violation of ``target`` imply a violation of ``known``?

    Equivalently (contrapositive): if every known constraint holds, the
    target holds.  ``schemas``/``column_domains`` ground the canonical
    database in the network's attribute domains, which can be decisive
    (see the paper's T2′ example).
    """
    result = contains(
        target.program,
        [c.program for c in known],
        solver,
        schemas=schemas,
        column_domains=column_domains,
        generic_rows=generic_rows,
    )
    verdict = (
        SubsumptionVerdict.SUBSUMED if result.contained else SubsumptionVerdict.UNKNOWN
    )
    return SubsumptionResult(verdict=verdict, containment=result)
