"""The complete-approach baseline: enumerate every possible world.

The de-facto workflow the paper departs from — instantiate each possible
concrete network and run a conventional (definite) check on it.  This is
the comparator for two claims:

* **loss-less modeling** (§4): one fauré-log query over the c-table must
  agree with running the query in all 2^k worlds;
* **cost**: world enumeration scales as the product of the c-variable
  domain sizes, while fauré's partial evaluation and the subsumption
  tests do not.

The ground evaluator here is deliberately conventional: plain datalog
over regular relations (no conditions), implemented independently of the
fauré-log machinery so the comparison is meaningful.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from ..ctable.condition import Comparison, Condition, FalseCond, LinearAtom, TrueCond
from ..ctable.table import Database
from ..ctable.terms import Constant, CVariable, Term, Variable
from ..ctable.worlds import instantiate_database, iter_assignments
from ..faurelog.ast import Literal, Program, ProgramError, Rule
from ..faurelog.stratify import stratify
from ..solver.domains import DomainMap

__all__ = ["GroundEvaluator", "WorldSweep", "sweep_constraint", "sweep_query"]

Row = Tuple[Constant, ...]
Relations = Dict[str, Set[Row]]


class GroundEvaluator:
    """Stratified datalog over regular (condition-free) relations."""

    def __init__(self, relations: Mapping[str, Iterable[Row]]):
        self.relations: Relations = {
            name: set(rows) for name, rows in relations.items()
        }

    def run(self, program: Program) -> Relations:
        derived: Relations = {p: set() for p in program.idb_predicates()}
        full = dict(self.relations)
        for pred, rows in derived.items():
            full[pred] = rows
        for stratum in stratify(program):
            rules = [r for r in program if r.head.predicate in stratum]
            changed = True
            while changed:
                changed = False
                for rule in rules:
                    for binding in self._matches(rule, full):
                        row = self._head_row(rule, binding)
                        if row not in full[rule.head.predicate]:
                            full[rule.head.predicate].add(row)
                            changed = True
        return derived

    # -- matching -----------------------------------------------------------

    def _matches(self, rule: Rule, full: Relations):
        positives = list(rule.positive_literals())
        negatives = list(rule.negative_literals())
        comparisons = list(rule.comparisons())

        def resolve(term: Term, binding: Dict[Term, Constant]) -> Optional[Constant]:
            if isinstance(term, Constant):
                return term
            return binding.get(term)

        def check_comparisons(binding: Dict[Term, Constant]) -> bool:
            for cond in comparisons:
                mapped = cond.substitute(binding)
                if isinstance(mapped, FalseCond):
                    return False
                if isinstance(mapped, TrueCond):
                    continue
                # Residual c-variables here mean the program references
                # global unknowns — not a *ground* instance.
                raise ProgramError(
                    f"ground evaluation hit unresolved condition {mapped}"
                )
            return True

        def rec(idx: int, binding: Dict[Term, Constant]):
            if idx == len(positives):
                if not check_comparisons(binding):
                    return
                for neg in negatives:
                    row = tuple(resolve(t, binding) for t in neg.atom.terms)
                    if any(v is None for v in row):
                        raise ProgramError(f"unbound term in negated {neg}")
                    if row in full.get(neg.predicate, set()):
                        return
                yield dict(binding)
                return
            literal = positives[idx]
            # snapshot: the caller may extend the relation mid-iteration
            rows = list(full.get(literal.predicate, set()))
            for row in rows:
                new_binding = dict(binding)
                ok = True
                for term, value in zip(literal.atom.terms, row):
                    if isinstance(term, Constant):
                        if term != value:
                            ok = False
                            break
                    else:
                        bound = new_binding.get(term)
                        if bound is None:
                            new_binding[term] = value
                        elif bound != value:
                            ok = False
                            break
                if ok:
                    yield from rec(idx + 1, new_binding)

        yield from rec(0, {})

    def _head_row(self, rule: Rule, binding: Dict[Term, Constant]) -> Row:
        row: List[Constant] = []
        for term in rule.head.terms:
            if isinstance(term, Constant):
                row.append(term)
            else:
                value = binding.get(term)
                if value is None:
                    raise ProgramError(f"unbound head term {term} in {rule}")
                row.append(value)
        return tuple(row)


@dataclass
class WorldSweep:
    """Aggregate of a query/constraint over every possible world."""

    worlds: int = 0
    violating_worlds: int = 0
    per_world: List[Tuple[Dict[CVariable, Constant], bool]] = field(default_factory=list)

    @property
    def holds_everywhere(self) -> bool:
        return self.violating_worlds == 0

    @property
    def violated_everywhere(self) -> bool:
        return self.worlds > 0 and self.violating_worlds == self.worlds


def sweep_constraint(
    program: Program,
    database: Database,
    domains: DomainMap,
    target: str = "panic",
    record_worlds: bool = False,
) -> WorldSweep:
    """Check a panic constraint in every possible world (the baseline)."""
    cvars = sorted(database.cvariables(), key=lambda v: v.name)
    sweep = WorldSweep()
    for assignment in iter_assignments(cvars, domains):
        ground = GroundEvaluator(instantiate_database(database, assignment))
        derived = ground.run(program)
        violated = bool(derived.get(target))
        sweep.worlds += 1
        if violated:
            sweep.violating_worlds += 1
        if record_worlds:
            sweep.per_world.append((dict(assignment), violated))
    return sweep


def sweep_query(
    program: Program,
    database: Database,
    domains: DomainMap,
    output: str,
) -> Dict[Row, int]:
    """Run a query in every world; returns answer-row → #worlds seen."""
    cvars = sorted(database.cvariables(), key=lambda v: v.name)
    counts: Dict[Row, int] = {}
    for assignment in iter_assignments(cvars, domains):
        ground = GroundEvaluator(instantiate_database(database, assignment))
        derived = ground.run(program)
        for row in derived.get(output, set()):
            counts[row] = counts.get(row, 0) + 1
    return counts
