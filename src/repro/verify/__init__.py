"""Relative-complete verification (paper, §5).

Constraints as 0-ary panic queries, the category (i) subsumption test,
the category (ii) update-rewrite test, the information-ladder verifier,
and the complete-approach (possible-worlds) baseline.
"""

from .baseline import GroundEvaluator, WorldSweep, sweep_constraint, sweep_query
from .constraints import CheckResult, Constraint, Status
from .monitor import Alarm, ConstraintMonitor
from .plans import PlanReport, StepVerdict, check_plan
from .repair import Repair, suggest_repairs
from .subsumption import SubsumptionResult, SubsumptionVerdict, check_subsumption
from .updates import check_after_update_directly, check_with_update, rewrite_target
from .verifier import Level, RelativeCompleteVerifier, Verdict
from .witness import Witness, extract_compliant_world, extract_witness

__all__ = [
    "GroundEvaluator",
    "WorldSweep",
    "sweep_constraint",
    "sweep_query",
    "CheckResult",
    "Constraint",
    "Alarm",
    "ConstraintMonitor",
    "PlanReport",
    "StepVerdict",
    "check_plan",
    "Repair",
    "suggest_repairs",
    "Status",
    "SubsumptionResult",
    "SubsumptionVerdict",
    "check_subsumption",
    "check_after_update_directly",
    "check_with_update",
    "rewrite_target",
    "Level",
    "RelativeCompleteVerifier",
    "Verdict",
    "Witness",
    "extract_compliant_world",
    "extract_witness",
]
