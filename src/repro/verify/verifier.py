"""The relative-complete verifier: a ladder of increasingly informed tests.

Fauré's verification philosophy (§2, §5): instead of one conclusive
verifier demanding the whole network, run the *strongest test the
available information permits*, and answer "unknown" only when more
information is genuinely needed:

1. **constraints only** → category (i) subsumption;
2. **+ update** → category (ii) rewrite-then-subsume;
3. **+ network state** → direct (possibly conditional) evaluation.

:class:`RelativeCompleteVerifier` runs the ladder in order and reports
which level decided, so callers can see exactly what information bought
the verdict.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..ctable.condition import Condition, FALSE
from ..ctable.table import Database
from ..faurelog.rewrite import Update, apply_update
from ..robustness.errors import FaureError
from ..solver.domains import Domain
from ..solver.interface import ConditionSolver
from .constraints import CheckResult, Constraint, Status
from .subsumption import SubsumptionVerdict, check_subsumption
from .updates import check_with_update

__all__ = ["Level", "Verdict", "RelativeCompleteVerifier"]


class Level(enum.Enum):
    """Information levels, weakest first."""

    CONSTRAINTS = "constraints-only"
    UPDATE = "constraints+update"
    STATE = "full-state"


@dataclass
class Verdict:
    """The ladder's answer: status, deciding level, and the trail."""

    status: Status
    decided_by: Optional[Level] = None
    violation_condition: Condition = FALSE
    trail: List[str] = field(default_factory=list)
    #: Shared-memo activity attributable to this verification run
    #: (``memo_hits``/``memo_misses``/``canonical_collapses`` deltas of
    #: the verifier's solver); empty when memoization is disabled.
    memo_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status is Status.HOLDS

    def __str__(self) -> str:
        by = f" (by {self.decided_by.value})" if self.decided_by else ""
        return f"{self.status.value}{by}"


class RelativeCompleteVerifier:
    """Runs the strongest applicable test for the information at hand.

    Parameters
    ----------
    known_constraints:
        Constraints maintained by other teams, assumed to hold (after
        the update, per §5's setting).
    solver:
        Shared condition solver.
    schemas / column_domains:
        Ground the containment tests in the network's attribute domains.
    """

    def __init__(
        self,
        known_constraints: Sequence[Constraint],
        solver: ConditionSolver,
        schemas: Optional[Dict[str, Sequence[str]]] = None,
        column_domains: Optional[Dict[str, Domain]] = None,
        generic_rows: Optional[int] = None,
        budget_retries: int = 1,
        budget_growth: float = 4.0,
    ):
        self.known = list(known_constraints)
        self.solver = solver
        self.schemas = schemas
        self.column_domains = column_domains
        self.generic_rows = generic_rows
        #: Verification wants definite answers: an INCONCLUSIVE direct
        #: check is retried up to this many times, scaling every budget
        #: of the solver's governor by ``budget_growth`` each attempt.
        self.budget_retries = budget_retries
        self.budget_growth = budget_growth

    def verify(
        self,
        target: Constraint,
        update: Optional[Update] = None,
        state: Optional[Database] = None,
    ) -> Verdict:
        """Climb the ladder with whatever is supplied.

        ``update=None`` stops after category (i); ``state=None`` stops
        after category (ii).  The verdict's trail records each attempt.
        """
        trail: List[str] = []
        degrade = self.solver.governor is not None and self.solver.governor.degrade
        stats = self.solver.stats
        memo_before = (stats.memo_hits, stats.memo_misses, stats.canonical_collapses)

        def finish(verdict: Verdict) -> Verdict:
            if self.solver.memo is not None:
                verdict.memo_stats = {
                    "memo_hits": stats.memo_hits - memo_before[0],
                    "memo_misses": stats.memo_misses - memo_before[1],
                    "canonical_collapses": stats.canonical_collapses - memo_before[2],
                }
            return verdict

        # Level 1: constraints only.  The subsumption tests internally
        # demand definite solver answers; under a degrading governor a
        # budget failure is not an error, just "this level cannot
        # decide" — fall through to the next rung of the ladder.
        try:
            sub = check_subsumption(
                target,
                self.known,
                self.solver,
                schemas=self.schemas,
                column_domains=self.column_domains,
                generic_rows=self.generic_rows,
            )
        except FaureError as exc:
            if not degrade:
                raise
            trail.append(f"category(i) subsumption: inconclusive ({exc})")
        else:
            trail.append(f"category(i) subsumption: {sub}")
            if sub.verdict is SubsumptionVerdict.SUBSUMED:
                return finish(Verdict(Status.HOLDS, Level.CONSTRAINTS, trail=trail))

        # Level 2: + update.
        if update is not None:
            try:
                sub2 = check_with_update(
                    target,
                    self.known,
                    update,
                    self.solver,
                    schemas=self.schemas,
                    column_domains=self.column_domains,
                    generic_rows=self.generic_rows,
                )
            except FaureError as exc:
                if not degrade:
                    raise
                trail.append(f"category(ii) rewrite+subsumption: inconclusive ({exc})")
            else:
                trail.append(f"category(ii) rewrite+subsumption: {sub2}")
                if sub2.verdict is SubsumptionVerdict.SUBSUMED:
                    return finish(Verdict(Status.HOLDS, Level.UPDATE, trail=trail))

        # Level 3: + full state (direct, possibly conditional, check).
        if state is not None:
            checked_state = apply_update(state, update) if update is not None else state
            result = target.check(checked_state, self.solver)
            trail.append(f"direct check: {result}")
            # Retry-with-larger-budget: verification is where a definite
            # answer matters, so an INCONCLUSIVE (budget-starved) check
            # escalates — scale the governor's budgets and re-run.
            governor = self.solver.governor
            attempt = 0
            while (
                result.status is Status.INCONCLUSIVE
                and governor is not None
                and attempt < self.budget_retries
            ):
                attempt += 1
                governor.scale(self.budget_growth)
                governor.start()
                result = target.check(checked_state, self.solver)
                trail.append(
                    f"direct check (budget x{self.budget_growth ** attempt:g}): {result}"
                )
            return finish(
                Verdict(
                    result.status,
                    Level.STATE,
                    violation_condition=result.violation_condition,
                    trail=trail,
                )
            )

        return finish(Verdict(Status.UNKNOWN, None, trail=trail))

    def verify_many(
        self,
        targets: Sequence[Constraint],
        update: Optional[Update] = None,
        state: Optional[Database] = None,
        jobs: int = 1,
        executor=None,
        checkpoint=None,
    ) -> List[Verdict]:
        """Run the ladder on independent target constraints, in order.

        ``jobs=1`` is exactly a loop over :meth:`verify`.  With ``jobs >
        1`` the verifier's configuration (known constraints, schemas,
        domains, budgets) ships to each worker once, each target climbs
        its own ladder under a governor rebuilt from the parent's
        remaining budgets, and picklable :class:`Verdict` objects come
        back in target order.  Worker memo tables are private to their
        process — definite verdicts computed in workers are *not* folded
        back into the parent's memo (unlike batched pruning, the ladder
        mixes sat and implication keys whose conditions stay
        worker-side), so a later serial run may redo that work; results
        are unaffected.

        A target whose worker is lost past the supervised executor's
        retry budget (``on_worker_loss="degrade"``) reports
        ``INCONCLUSIVE`` — never a silently missing or fabricated
        verdict.  With ``checkpoint`` (a
        :class:`~repro.robustness.checkpoint.CheckpointJournal`),
        already-durable verdicts are replayed and fresh ones journaled
        per target, so a killed run resumes re-verifying nothing.
        """
        verdicts: Dict[int, Verdict] = {}
        pending: List[tuple] = []
        for i, target in enumerate(targets):
            payload = None
            if checkpoint is not None:
                from ..robustness.checkpoint import verdict_from_obj

                payload = checkpoint.get(
                    "verify", {"unit": "verify", "target": target.name, "index": i}
                )
            if payload is not None:
                verdicts[i] = verdict_from_obj(payload)
            else:
                pending.append((i, target))

        if pending:
            computed = self._verify_pending(
                [t for _, t in pending], update, state, jobs, executor
            )
            for (i, target), verdict in zip(pending, computed):
                if checkpoint is not None:
                    from ..robustness.checkpoint import verdict_to_obj

                    checkpoint.record(
                        "verify",
                        {"unit": "verify", "target": target.name, "index": i},
                        verdict_to_obj(verdict),
                    )
                verdicts[i] = verdict
        return [verdicts[i] for i in range(len(targets))]

    def _verify_pending(
        self,
        targets: Sequence[Constraint],
        update: Optional[Update],
        state: Optional[Database],
        jobs: int,
        executor,
    ) -> List[Verdict]:
        """The actual serial-or-parallel ladder execution."""
        if jobs <= 1 or len(targets) <= 1:
            return [self.verify(t, update=update, state=state) for t in targets]
        from ..parallel.executor import balanced_shards
        from ..parallel.shared_memo import reads_allowed, session_for
        from ..parallel.spec import GovernorSpec
        from ..parallel.supervisor import SupervisedExecutor, TaskLost, fold_failures
        from ..parallel.worker import init_verify_worker, run_verify_shard

        executor = executor or SupervisedExecutor(jobs)
        governor = self.solver.governor
        session = session_for(self.solver.memo, executor)
        reads = reads_allowed(governor)
        if session is not None:
            session.enable_parent_reads(reads)

        def _initargs() -> tuple:
            # Re-snapshot the live governor on every (re)spawn: the spec
            # carries the deadline as *remaining* seconds, so a retried
            # target must not be handed the full original budget again.
            # The shared update/state pair ships here, once per worker,
            # instead of riding along in every task payload.
            return (
                self.known,
                self.schemas,
                self.column_domains,
                self.generic_rows,
                self.budget_retries,
                self.budget_growth,
                self.solver.domains,
                self.solver.enumeration_limit,
                GovernorSpec.from_governor(governor),
                self.solver.memo is not None,
                self.solver.fast_path,
                session.handle(reads) if session is not None else None,
                update,
                state,
                # Warm worker memos from the parent's, ungoverned runs
                # only (mirrors the store-read gating; see shared_memo).
                self.solver.memo._entries
                if reads and self.solver.memo is not None
                else None,
            )

        # Coarse sharding: a batch of targets per task message (2 shards
        # per worker for load balance), not one task per target.
        shards = balanced_shards(list(targets), jobs * 2)
        results = executor.map(
            run_verify_shard,
            shards,
            initializer=init_verify_worker,
            initargs=_initargs(),
            refresh_initargs=_initargs,
        )
        fold_failures(executor, governor=governor)
        out: List[Verdict] = []
        for shard, res in zip(shards, results):
            if isinstance(res, TaskLost):
                # Worker loss degrades every target of the shard to
                # INCONCLUSIVE — an explicit "more resources needed",
                # never a silent partial answer.
                out.extend(
                    Verdict(
                        Status.INCONCLUSIVE,
                        None,
                        trail=[f"worker lost: {res.reason}"],
                    )
                    for _ in shard
                )
            else:
                out.extend(res["verdicts"])
        return out
