"""Repair suggestions for violated constraints.

A verdict of VIOLATED/CONDITIONAL tells the operator *that* something is
wrong; the natural follow-up is *what is the smallest change that fixes
it*.  Every panic derivation of a constraint is a conjunction of
positive facts, absent (negated) facts, and comparisons — so candidate
single-operation repairs fall out structurally:

* **delete** a fact matching one of the derivation's positive literals
  (remove the offending traffic/route);
* **insert** a fact matching one of its negated literals (deploy the
  missing firewall/load balancer).

Candidates are generated from the actual derivations (via the same
c-valuation the evaluator uses), then *validated*: each is applied to a
copy of the state and re-checked.  Returned repairs are classified as
``full`` (the constraint then holds in every world) or ``partial``
(strictly fewer violating worlds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..ctable.condition import Condition, FALSE, disjoin
from ..ctable.table import Database
from ..ctable.terms import Constant, CVariable, Term, Variable
from ..engine.storage import Storage
from ..faurelog.ast import Atom, Literal, Program, Rule
from ..faurelog.containment import unfold
from ..faurelog.rewrite import Deletion, Insertion, apply_update
from ..faurelog.valuation import derive
from ..solver.interface import ConditionSolver
from .constraints import Constraint, Status

__all__ = ["Repair", "suggest_repairs"]


@dataclass
class Repair:
    """One validated single-operation fix."""

    operation: Union[Insertion, Deletion]
    effect: str  # "full" | "partial"
    remaining_condition: Condition = FALSE

    def __str__(self) -> str:
        tail = "" if self.effect == "full" else f" (remaining: {self.remaining_condition})"
        return f"{self.operation} [{self.effect}]{tail}"


def _resolve(term: Term, bindings) -> Term:
    if isinstance(term, (Variable, CVariable)):
        return bindings.get(term, term)
    return term


def _candidates(
    constraint: Constraint,
    database: Database,
    solver: ConditionSolver,
    max_derivations: int,
) -> List[Union[Insertion, Deletion]]:
    storage = Storage(database)
    seen = set()
    out: List[Union[Insertion, Deletion]] = []
    for cq in unfold(constraint.program):
        body = list(cq.positives) + list(cq.negatives) + list(cq.comparisons)
        rule = Rule(Atom("panic"), body)
        count = 0
        for bindings, condition in derive(rule, storage):
            if not solver.is_satisfiable(condition):
                continue
            count += 1
            if count > max_derivations:
                break
            for literal in cq.positives:
                values = tuple(_resolve(t, bindings) for t in literal.atom.terms)
                key = ("-", literal.predicate, values)
                if key not in seen:
                    seen.add(key)
                    out.append(Deletion(literal.predicate, values))
            for literal in cq.negatives:
                values = tuple(_resolve(t, bindings) for t in literal.atom.terms)
                if any(isinstance(v, Variable) for v in values):
                    continue
                key = ("+", literal.predicate, values)
                if key not in seen:
                    seen.add(key)
                    out.append(Insertion(literal.predicate, values))
    return out


def suggest_repairs(
    constraint: Constraint,
    database: Database,
    solver: ConditionSolver,
    max_suggestions: int = 10,
    max_derivations: int = 50,
) -> List[Repair]:
    """Validated single-operation repairs, full fixes first.

    Empty when the constraint already holds, or when no single insert /
    delete helps (e.g. several independent violations).
    """
    before = constraint.check(database, solver)
    if before.status is Status.HOLDS:
        return []
    before_condition = before.violation_condition

    repairs: List[Repair] = []
    for operation in _candidates(constraint, database, solver, max_derivations):
        # deleting via a pattern containing c-variables deletes
        # conditionally; that is fine — apply_update handles it
        try:
            patched = apply_update(database, [operation])
        except Exception:
            continue
        after = constraint.check(patched, solver)
        if after.status is Status.HOLDS:
            repairs.append(Repair(operation, "full"))
        else:
            improved = solver.implies(
                after.violation_condition, before_condition
            ) and not solver.implies(
                before_condition, after.violation_condition
            )
            if improved:
                repairs.append(
                    Repair(operation, "partial", after.violation_condition)
                )
        if len([r for r in repairs if r.effect == "full"]) >= max_suggestions:
            break
    repairs.sort(key=lambda r: (r.effect != "full", str(r.operation)))
    return repairs[:max_suggestions]
