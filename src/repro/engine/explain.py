"""EXPLAIN: textual rendering of algebra plans.

Mirrors the database habit the engine stands in for — before trusting an
execution strategy, look at the plan.  ``explain(plan, db)`` renders the
operator tree with schemas and cardinalities: exact ``[N rows]`` counts
for stored tables, and System-R-style ``[~N rows]`` estimates from
:mod:`repro.analysis.cost` for the computed nodes above them (omitted
when a leaf has no stored table to anchor the estimate).
"""

from __future__ import annotations

from typing import List, Optional

from ..ctable.table import Database
from .algebra import (
    AntiJoin,
    ConditionSelection,
    Distinct,
    Join,
    PlanNode,
    Product,
    Projection,
    Rename,
    Scan,
    Selection,
    Union,
)

__all__ = ["explain"]


def _describe(node: PlanNode, db: Database) -> str:
    if isinstance(node, Scan):
        size = len(db.table(node.table_name)) if node.table_name in db else "?"
        alias = f" as {node.alias}" if node.alias != node.table_name else ""
        return f"Scan {node.table_name}{alias} [{size} rows]"
    if isinstance(node, Selection):
        preds = ", ".join(
            f"{p.lhs} {p.op} {p.rhs}" for p in node.predicates
        )
        return f"Select [{preds}]"
    if isinstance(node, ConditionSelection):
        return f"SelectWhere [{node.template}]"
    if isinstance(node, Projection):
        merge = "" if node.merge else ", no-merge"
        return f"Project [{', '.join(node.columns)}{merge}]"
    if isinstance(node, Rename):
        pairs = ", ".join(f"{a}→{b}" for a, b in node.mapping.items())
        return f"Rename [{pairs}]"
    if isinstance(node, Join):
        on = ", ".join(f"{a}={b}" for a, b in node.on)
        return f"HashJoin [on {on}]"
    if isinstance(node, AntiJoin):
        on = ", ".join(f"{a}={b}" for a, b in node.on) or "<empty>"
        return f"AntiJoin [on {on}]"
    if isinstance(node, Product):
        return "Product"
    if isinstance(node, Union):
        return f"Union [{len(node.children)} inputs]"
    if isinstance(node, Distinct):
        return "Distinct"
    return type(node).__name__


def _children(node: PlanNode) -> List[PlanNode]:
    if isinstance(node, (Selection, ConditionSelection, Projection, Rename, Distinct)):
        return [node.child]
    if isinstance(node, (Join, AntiJoin, Product)):
        return [node.left, node.right]
    if isinstance(node, Union):
        return list(node.children)
    return []


def explain(plan: PlanNode, db: Database, solver=None, optimization=None) -> str:
    """The operator tree, one node per line, children indented.

    With a ``solver``, a trailing ``[memo]`` line reports the shared
    verdict cache: hits/misses observed by this solver instance plus the
    process-wide entry/intern counts (omitted when memoization is off).
    With an ``optimization`` (an
    :class:`~repro.analysis.optimize.OptimizationResult`), trailing
    ``[optimize]`` lines show the narrowed domains, sliced/deactivated
    rules, and the static condition-conjunct classification.
    """
    from ..analysis.cost import estimate_rows  # local: avoids import cycle

    lines: List[str] = []

    def estimate(node: PlanNode) -> str:
        if isinstance(node, Scan):
            return ""  # exact count already shown by _describe
        est = estimate_rows(node, db)
        if est is None:
            return ""
        return f" [~{est:g} rows]"

    def walk(node: PlanNode, depth: int) -> None:
        try:
            schema = " (" + ", ".join(node.schema(db)) + ")"
        except Exception:
            schema = ""
        lines.append(
            "  " * depth + "-> " + _describe(node, db) + estimate(node) + schema
        )
        for child in _children(node):
            walk(child, depth + 1)

    walk(plan, 0)
    if solver is not None and getattr(solver, "memo", None) is not None:
        shared = solver.memo.counters()
        lines.append(
            "[memo] hits={} misses={} collapses={} | shared entries={} interned={}".format(
                solver.stats.memo_hits,
                solver.stats.memo_misses,
                solver.stats.canonical_collapses,
                shared["memo_entries"],
                shared["interned"],
            )
        )
    if optimization is not None:
        lines.append(optimization.describe())
    return "\n".join(lines)
