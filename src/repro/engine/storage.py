"""Indexed storage over c-tables.

The paper implements fauré-log inside PostgreSQL explicitly so that
"existing database structure (e.g., indexing)" accelerates evaluation.
This module provides the equivalent for our in-memory engine: per-column
hash indexes over the *constant* entries of a c-table.  Entries that are
c-variables cannot be hashed to a single key — they may match anything —
so they live in a per-column wildcard bucket that every probe also
returns, preserving c-table matching semantics.

Indexes are built lazily on first probe and maintained incrementally on
insert.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..ctable.table import CTable, CTuple, Database
from ..ctable.terms import Constant, CVariable, Term

__all__ = ["ColumnIndex", "IndexedTable", "Storage"]


class ColumnIndex:
    """Hash index on one column: constant → tuples, plus a wildcard bucket."""

    def __init__(self) -> None:
        self.by_constant: Dict[Constant, List[CTuple]] = {}
        self.wildcard: List[CTuple] = []

    def insert(self, value: Term, tup: CTuple) -> None:
        if isinstance(value, Constant):
            self.by_constant.setdefault(value, []).append(tup)
        else:
            self.wildcard.append(tup)

    def probe(self, value: Constant) -> Iterable[CTuple]:
        """All tuples that could match ``value`` in this column."""
        yield from self.by_constant.get(value, ())
        yield from self.wildcard

    def __len__(self) -> int:
        return sum(len(v) for v in self.by_constant.values()) + len(self.wildcard)


class IndexedTable:
    """A c-table plus lazily built per-column indexes."""

    def __init__(self, table: CTable):
        self.table = table
        self._indexes: Dict[int, ColumnIndex] = {}

    @property
    def name(self) -> str:
        return self.table.name

    @property
    def schema(self) -> Tuple[str, ...]:
        return self.table.schema

    def add(self, row, condition=None) -> bool:
        """Insert (delegates to the table) and maintain live indexes."""
        if condition is None:
            added = self.table.add(row)
        else:
            added = self.table.add(row, condition)
        if added and self._indexes:
            tup = self.table.tuples()[-1]
            for col, index in self._indexes.items():
                index.insert(tup.values[col], tup)
        return added

    def index_on(self, column: int) -> ColumnIndex:
        """Get (building if needed) the index for one column position."""
        index = self._indexes.get(column)
        if index is None:
            index = ColumnIndex()
            for tup in self.table:
                index.insert(tup.values[column], tup)
            self._indexes[column] = index
        return index

    def candidates(self, pattern: Sequence[Optional[Constant]]) -> Iterable[CTuple]:
        """Tuples possibly matching a pattern of per-column constants.

        ``pattern[i]`` is a :class:`Constant` to match in column ``i`` or
        ``None`` for "anything".  Uses the most selective single-column
        index among the constant positions; falls back to a full scan
        when the pattern has no constants.
        """
        best_col = None
        best_size = None
        for col, want in enumerate(pattern):
            if want is None:
                continue
            index = self.index_on(col)
            size = len(index.by_constant.get(want, ())) + len(index.wildcard)
            if best_size is None or size < best_size:
                best_col, best_size = col, size
        if best_col is None:
            return iter(self.table)
        return self._indexes[best_col].probe(pattern[best_col])

    def __iter__(self):
        return iter(self.table)

    def __len__(self) -> int:
        return len(self.table)


class Storage:
    """A database whose tables are wrapped with indexes.

    Acts as a drop-in layer above :class:`~repro.ctable.table.Database`
    for components that want indexed probes (the fauré-log evaluator).
    """

    def __init__(self, db: Optional[Database] = None):
        self.db = db if db is not None else Database()
        self._indexed: Dict[str, IndexedTable] = {}

    def indexed(self, name: str) -> IndexedTable:
        wrapper = self._indexed.get(name)
        table = self.db.table(name)
        if wrapper is None or wrapper.table is not table:
            wrapper = IndexedTable(table)
            self._indexed[name] = wrapper
        return wrapper

    def create_table(self, name: str, schema: Sequence[str]) -> IndexedTable:
        self.db.create_table(name, schema)
        return self.indexed(name)

    def invalidate(self, name: str) -> None:
        """Drop cached indexes after out-of-band table mutation."""
        self._indexed.pop(name, None)

    def __contains__(self, name: str) -> bool:
        return name in self.db
