"""The in-memory relational engine — fauré's PostgreSQL substitute.

Provides indexed storage over c-tables, the extended relational algebra
of §3, the three-phase evaluation pipeline of §6, a mini-SQL front-end,
and the sql-time/solver-time instrumentation behind Table 4.
"""

from .algebra import (
    AntiJoin,
    Col,
    ColumnRef,
    ConditionSelection,
    Distinct,
    ExecutionContext,
    Join,
    PlanNode,
    Pred,
    Product,
    Projection,
    Rename,
    Scan,
    Selection,
    Union,
    evaluate_plan,
    resolve_condition,
)
from .aggregates import certain_count, count_bounds, possible_count
from .explain import explain
from .pipeline import run_eager, run_lazy, solver_prune
from .sql import SqlEngine, SqlError
from .stats import EvalStats, Stopwatch
from .storage import ColumnIndex, IndexedTable, Storage

__all__ = [
    "AntiJoin",
    "Col",
    "ColumnRef",
    "ConditionSelection",
    "Distinct",
    "ExecutionContext",
    "Join",
    "PlanNode",
    "Pred",
    "Product",
    "Projection",
    "Rename",
    "Scan",
    "Selection",
    "Union",
    "evaluate_plan",
    "resolve_condition",
    "explain",
    "certain_count",
    "count_bounds",
    "possible_count",
    "run_eager",
    "run_lazy",
    "solver_prune",
    "SqlEngine",
    "SqlError",
    "EvalStats",
    "Stopwatch",
    "ColumnIndex",
    "IndexedTable",
    "Storage",
]
