"""Extended relational algebra over c-tables.

The straightforward SQL extension of the c-table literature (paper, §3):
every operator manipulates (data part, condition) pairs —

* **selection** over an entry that is a c-variable does not filter, it
  *conjoins* the predicate (instantiated with that c-variable) onto the
  tuple's condition;
* **join** concatenates tuples and conjoins both conditions plus the
  equalities between join attributes (symbolic when a side is a
  c-variable);
* **projection** keeps conditions; tuples that collapse to the same data
  part are merged by disjoining their conditions.

Operators are plan nodes evaluated against a
:class:`~repro.ctable.table.Database`.  When a
:class:`~repro.solver.ConditionSolver` is supplied, operators prune
tuples whose conditions are unsatisfiable (the paper's step 3); the
pruning time is charged to ``stats.solver_seconds`` so the SQL/Z3 split
of Table 4 is measurable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..ctable.condition import (
    Comparison,
    Condition,
    FALSE,
    FalseCond,
    TRUE,
    TrueCond,
    conjoin,
    disjoin,
)
from ..ctable.table import CTable, CTuple, Database
from ..ctable.terms import Constant, CVariable, Term, as_term
from ..robustness.verdict import Verdict
from ..solver.interface import ConditionSolver
from .stats import EvalStats, Stopwatch

__all__ = [
    "Col",
    "ColumnRef",
    "Pred",
    "PlanNode",
    "Scan",
    "Selection",
    "ConditionSelection",
    "Projection",
    "Join",
    "AntiJoin",
    "Product",
    "Union",
    "Rename",
    "Distinct",
    "ExecutionContext",
    "evaluate_plan",
    "resolve_condition",
]


class ColumnRef(Term):
    """A term standing for "the value of column *name*" in a row.

    Only appears inside condition *templates* (e.g. a parsed SQL WHERE
    clause); :func:`resolve_condition` replaces it with the actual entry
    before the condition ever reaches a c-table or the solver.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        object.__setattr__(self, "name", name)

    def __setattr__(self, name, value):  # pragma: no cover - immutability
        raise AttributeError("ColumnRef is immutable")

    def __eq__(self, other) -> bool:
        return isinstance(other, ColumnRef) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("colref", self.name))

    def __repr__(self) -> str:
        return f"ColumnRef({self.name!r})"

    def __str__(self) -> str:
        return self.name


def _resolve_term(term: Term, schema: Sequence[str], values: Sequence[Term]) -> Term:
    if isinstance(term, ColumnRef):
        try:
            return values[list(schema).index(term.name)]
        except ValueError:
            raise KeyError(f"unknown column {term.name!r} in schema {tuple(schema)}") from None
    return term


def resolve_condition(
    template: Condition, schema: Sequence[str], values: Sequence[Term]
) -> Condition:
    """Instantiate a condition template against one row.

    Every :class:`ColumnRef` leaf is replaced with the row's entry for
    that column; constant comparisons fold away.
    """
    from ..ctable.condition import And, LinearAtom, Not, Or

    if isinstance(template, Comparison):
        lhs = _resolve_term(template.lhs, schema, values)
        rhs = _resolve_term(template.rhs, schema, values)
        return Comparison(lhs, template.op, rhs).constant_fold()
    if isinstance(template, And):
        return conjoin([resolve_condition(c, schema, values) for c in template.children])
    if isinstance(template, Or):
        return disjoin([resolve_condition(c, schema, values) for c in template.children])
    if isinstance(template, Not):
        return resolve_condition(template.child, schema, values).negate()
    if isinstance(template, LinearAtom):
        if any(isinstance(v, ColumnRef) for v, _ in template.coeffs):
            raise ValueError("linear atoms over columns are not supported")
        return template
    return template


class Col:
    """A reference to an attribute by name in a plan's schema."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __eq__(self, other) -> bool:
        return isinstance(other, Col) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("col", self.name))

    def __repr__(self) -> str:
        return f"Col({self.name!r})"


class Pred:
    """A comparison predicate ``lhs op rhs`` over columns and constants.

    Column sides may be written as :class:`Col` or :class:`ColumnRef`
    interchangeably.
    """

    __slots__ = ("lhs", "op", "rhs")

    @staticmethod
    def _side(x):
        if isinstance(x, ColumnRef):
            return Col(x.name)
        if isinstance(x, Col):
            return x
        return as_term(x)

    def __init__(self, lhs: Union[Col, Term, object], op: str, rhs: Union[Col, Term, object]):
        self.lhs = self._side(lhs)
        self.op = op
        self.rhs = self._side(rhs)

    def resolve(self, schema: Sequence[str], values: Sequence[Term]) -> Condition:
        """Instantiate against a concrete tuple, yielding a condition.

        Constant-vs-constant comparisons fold to TRUE/FALSE; anything
        touching a c-variable stays symbolic.
        """

        def side(x):
            if isinstance(x, Col):
                try:
                    return values[schema.index(x.name)]
                except ValueError:
                    raise KeyError(f"unknown column {x.name!r} in schema {schema}") from None
            return x

        return Comparison(side(self.lhs), self.op, side(self.rhs)).constant_fold()

    def __repr__(self) -> str:
        return f"Pred({self.lhs!r}, {self.op!r}, {self.rhs!r})"


class ExecutionContext:
    """Carries the solver, pruning policy, and timing accumulators.

    With ``jobs > 1`` the context runs in *batch* mode: per-tuple
    :meth:`keep` checks degrade to the structural FALSE filter, and each
    operator instead hands its whole output to :meth:`finish`, which
    prunes it in one batched (and sharded) solver pass.  Note one
    accounting nuance: in batch mode ``tuples_generated`` counts tuples
    *before* the operator's prune (the serial eager path counts only
    survivors); pruned/kept counts are unchanged.
    """

    def __init__(
        self,
        solver: Optional[ConditionSolver] = None,
        prune: bool = True,
        stats: Optional[EvalStats] = None,
        jobs: int = 1,
        executor=None,
    ):
        self.solver = solver
        self.prune = prune and solver is not None
        self.stats = stats if stats is not None else EvalStats()
        self.jobs = max(1, int(jobs))
        self.executor = executor
        self.batch = self.prune and self.jobs > 1
        self._solver_watch = Stopwatch()

    def keep(self, condition: Condition) -> bool:
        """Solver-check a condition; charge time to the solver bucket.

        Three-valued degradation: an ``UNKNOWN`` verdict under a
        resource governor keeps the tuple (sound — pruning is only an
        optimisation) and is counted in ``stats.unknown_kept``.
        """
        if isinstance(condition, FalseCond):
            self.stats.tuples_pruned += 1
            return False
        if not self.prune or self.batch:
            return True
        start_seconds = self._solver_watch.seconds
        with self._solver_watch.measure():
            verdict = self.solver.sat_verdict(condition)
        self.stats.solver_seconds += self._solver_watch.seconds - start_seconds
        if verdict is Verdict.UNSAT:
            self.stats.tuples_pruned += 1
            return False
        if verdict is Verdict.UNKNOWN:
            self.stats.unknown_kept += 1
        return True

    def finish(self, table: CTable) -> CTable:
        """Batch-prune an operator's output (identity outside batch mode)."""
        if not self.batch:
            return table
        from ..parallel.batch import prune_batched

        start_seconds = self._solver_watch.seconds
        with self._solver_watch.measure():
            out = prune_batched(
                table, self.solver, self.stats, jobs=self.jobs, executor=self.executor
            )
        self.stats.solver_seconds += self._solver_watch.seconds - start_seconds
        return out


class PlanNode:
    """Base class of algebra plan nodes."""

    def schema(self, db: Database) -> Tuple[str, ...]:
        raise NotImplementedError

    def execute(self, db: Database, ctx: ExecutionContext) -> CTable:
        raise NotImplementedError


class Scan(PlanNode):
    """Read a stored table, optionally renaming it."""

    def __init__(self, table_name: str, alias: Optional[str] = None):
        self.table_name = table_name
        self.alias = alias or table_name

    def schema(self, db: Database) -> Tuple[str, ...]:
        return db.table(self.table_name).schema

    def execute(self, db: Database, ctx: ExecutionContext) -> CTable:
        src = db.table(self.table_name)
        out = CTable(self.alias, src.schema)
        for tup in src:
            out.add(tup)
        return out


class Selection(PlanNode):
    """σ_preds(child): conjoin predicate conditions tuple-by-tuple."""

    def __init__(self, child: PlanNode, predicates: Sequence[Pred]):
        self.child = child
        self.predicates = list(predicates)

    def schema(self, db: Database) -> Tuple[str, ...]:
        return self.child.schema(db)

    def execute(self, db: Database, ctx: ExecutionContext) -> CTable:
        src = self.child.execute(db, ctx)
        out = CTable(src.name, src.schema)
        schema = list(src.schema)
        for tup in src:
            conds = [tup.condition]
            dead = False
            for pred in self.predicates:
                c = pred.resolve(schema, tup.values)
                if isinstance(c, FalseCond):
                    dead = True
                    break
                conds.append(c)
            if dead:
                continue
            combined = conjoin(conds)
            if ctx.keep(combined):
                out.add(tup.values, combined)
                ctx.stats.tuples_generated += 1
        return ctx.finish(out)


class ConditionSelection(PlanNode):
    """Selection by an arbitrary boolean condition template.

    More general than :class:`Selection`: the template may mix AND/OR/NOT
    freely over column references, constants, and c-variables.  Used by
    the SQL front-end's WHERE clause.
    """

    def __init__(self, child: PlanNode, template: Condition):
        self.child = child
        self.template = template

    def schema(self, db: Database) -> Tuple[str, ...]:
        return self.child.schema(db)

    def execute(self, db: Database, ctx: ExecutionContext) -> CTable:
        src = self.child.execute(db, ctx)
        out = CTable(src.name, src.schema)
        schema = list(src.schema)
        for tup in src:
            cond = resolve_condition(self.template, schema, tup.values)
            combined = conjoin([tup.condition, cond])
            if isinstance(combined, FalseCond):
                ctx.stats.tuples_pruned += 1
                continue
            if ctx.keep(combined):
                out.add(tup.values, combined)
                ctx.stats.tuples_generated += 1
        return ctx.finish(out)


class Projection(PlanNode):
    """π_columns(child); same-data tuples merge by disjunction."""

    def __init__(self, child: PlanNode, columns: Sequence[str], merge: bool = True):
        self.child = child
        self.columns = list(columns)
        self.merge = merge

    def schema(self, db: Database) -> Tuple[str, ...]:
        return tuple(self.columns)

    def execute(self, db: Database, ctx: ExecutionContext) -> CTable:
        src = self.child.execute(db, ctx)
        idx = [src.attribute_index(c) for c in self.columns]
        out = CTable(src.name, self.columns)
        if not self.merge:
            for tup in src:
                vals = [tup.values[i] for i in idx]
                out.add(vals, tup.condition)
                ctx.stats.tuples_generated += 1
            return ctx.finish(out)
        merged: Dict[Tuple[Term, ...], List[Condition]] = {}
        order: List[Tuple[Term, ...]] = []
        for tup in src:
            key = tuple(tup.values[i] for i in idx)
            if key not in merged:
                merged[key] = []
                order.append(key)
            merged[key].append(tup.condition)
        for key in order:
            cond = disjoin(merged[key])
            if ctx.keep(cond):
                out.add(key, cond)
                ctx.stats.tuples_generated += 1
        return ctx.finish(out)


class Rename(PlanNode):
    """ρ: rename attributes (and optionally the relation)."""

    def __init__(self, child: PlanNode, mapping: Dict[str, str], name: Optional[str] = None):
        self.child = child
        self.mapping = dict(mapping)
        self.name = name

    def schema(self, db: Database) -> Tuple[str, ...]:
        return tuple(self.mapping.get(a, a) for a in self.child.schema(db))

    def execute(self, db: Database, ctx: ExecutionContext) -> CTable:
        src = self.child.execute(db, ctx)
        out = CTable(self.name or src.name, [self.mapping.get(a, a) for a in src.schema])
        for tup in src:
            out.add(tup)
        return out


class Product(PlanNode):
    """Cartesian product; conditions conjoin."""

    def __init__(self, left: PlanNode, right: PlanNode, name: str = "product"):
        self.left = left
        self.right = right
        self.name = name

    def schema(self, db: Database) -> Tuple[str, ...]:
        ls, rs = self.left.schema(db), self.right.schema(db)
        clash = set(ls) & set(rs)
        if clash:
            raise ValueError(f"ambiguous attributes in product: {sorted(clash)}")
        return ls + rs

    def execute(self, db: Database, ctx: ExecutionContext) -> CTable:
        left = self.left.execute(db, ctx)
        right = self.right.execute(db, ctx)
        out = CTable(self.name, self.schema(db))
        for lt in left:
            for rt in right:
                cond = conjoin([lt.condition, rt.condition])
                if ctx.keep(cond):
                    out.add(tuple(lt.values) + tuple(rt.values), cond)
                    ctx.stats.tuples_generated += 1
        return ctx.finish(out)


class Join(PlanNode):
    """Equi-join on named attribute pairs, with hash acceleration.

    For each pair ``(left_attr, right_attr)``: constant-vs-constant
    entries must agree; any side that is a c-variable contributes a
    symbolic equality to the output condition (the c-table join of §3).
    The hash index buckets right-hand tuples by their constant join keys
    so constant-constant matches don't scan; tuples with c-variable keys
    go to a wildcard bucket probed for every left tuple.  Mixed left
    keys probe a lazily-built partial-key index over their constant
    positions instead of scanning every bucket.
    """

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        on: Sequence[Tuple[str, str]],
        name: str = "join",
        project_right: Optional[Sequence[str]] = None,
    ):
        self.left = left
        self.right = right
        self.on = list(on)
        self.name = name
        self.project_right = list(project_right) if project_right is not None else None

    def schema(self, db: Database) -> Tuple[str, ...]:
        ls = self.left.schema(db)
        rs = self.right.schema(db)
        keep_right = self.project_right if self.project_right is not None else [
            a for a in rs if a not in {r for _, r in self.on}
        ]
        clash = set(ls) & set(keep_right)
        if clash:
            raise ValueError(f"ambiguous attributes in join output: {sorted(clash)}")
        return ls + tuple(keep_right)

    def execute(self, db: Database, ctx: ExecutionContext) -> CTable:
        left = self.left.execute(db, ctx)
        right = self.right.execute(db, ctx)
        l_idx = [left.attribute_index(a) for a, _ in self.on]
        r_idx = [right.attribute_index(b) for _, b in self.on]
        rs = right.schema
        keep_right = self.project_right if self.project_right is not None else [
            a for a in rs if a not in {r for _, r in self.on}
        ]
        keep_idx = [right.attribute_index(a) for a in keep_right]

        # Bucket right tuples: all-constant join keys hash directly;
        # tuples with any c-variable key are wildcard candidates.
        right_rows = list(right)
        buckets: Dict[Tuple[Term, ...], List[int]] = {}
        wildcards: List[int] = []
        for j, rt in enumerate(right_rows):
            key = tuple(rt.values[i] for i in r_idx)
            if all(isinstance(v, Constant) for v in key):
                buckets.setdefault(key, []).append(j)
            else:
                wildcards.append(j)

        # Mixed left keys (some positions constant, some c-variable)
        # probe a partial-key index over just their constant positions,
        # built lazily per distinct position mask: a right tuple can only
        # match if it agrees on those constants or is symbolic there.
        # Right tuples disagreeing on a constant position would have
        # produced a constant-folded FALSE equality anyway, so skipping
        # them never changes the output — it only avoids the full scan.
        partial: Dict[Tuple[int, ...], Tuple[Dict[Tuple[Term, ...], List[int]], List[int]]] = {}

        def candidates_for(lkey: Tuple[Term, ...]) -> Sequence[int]:
            mask = tuple(i for i, v in enumerate(lkey) if isinstance(v, Constant))
            if len(mask) == len(lkey):
                return list(buckets.get(lkey, ())) + wildcards
            if not mask:
                return range(len(right_rows))
            index = partial.get(mask)
            if index is None:
                exact: Dict[Tuple[Term, ...], List[int]] = {}
                symbolic: List[int] = []
                for j, rt in enumerate(right_rows):
                    sub = tuple(rt.values[r_idx[i]] for i in mask)
                    if all(isinstance(v, Constant) for v in sub):
                        exact.setdefault(sub, []).append(j)
                    else:
                        symbolic.append(j)
                index = (exact, symbolic)
                partial[mask] = index
            exact, symbolic = index
            sub = tuple(lkey[i] for i in mask)
            return sorted(exact.get(sub, []) + symbolic)

        out = CTable(self.name, tuple(left.schema) + tuple(keep_right))
        for lt in left:
            lkey = tuple(lt.values[i] for i in l_idx)
            for j in candidates_for(lkey):
                rt = right_rows[j]
                conds = [lt.condition, rt.condition]
                dead = False
                for li, ri in zip(l_idx, r_idx):
                    lv, rv = lt.values[li], rt.values[ri]
                    c = Comparison(lv, "=", rv).constant_fold()
                    if isinstance(c, FalseCond):
                        dead = True
                        break
                    conds.append(c)
                if dead:
                    continue
                cond = conjoin(conds)
                if ctx.keep(cond):
                    row = tuple(lt.values) + tuple(rt.values[i] for i in keep_idx)
                    out.add(row, cond)
                    ctx.stats.tuples_generated += 1
        return ctx.finish(out)


class AntiJoin(PlanNode):
    """NOT EXISTS with c-table semantics (the complement condition).

    Keeps every left tuple, conjoining the condition that *no* right
    tuple matches it on the join attributes: for each potentially
    matching right tuple, ¬(join equalities ∧ right condition).  Right
    tuples ruled out by constant mismatch contribute nothing.  This is
    the algebraic form of fauré-log's negated literal.
    """

    def __init__(self, left: PlanNode, right: PlanNode, on: Sequence[Tuple[str, str]]):
        self.left = left
        self.right = right
        self.on = list(on)

    def schema(self, db: Database) -> Tuple[str, ...]:
        return self.left.schema(db)

    def execute(self, db: Database, ctx: ExecutionContext) -> CTable:
        left = self.left.execute(db, ctx)
        right = self.right.execute(db, ctx)
        l_idx = [left.attribute_index(a) for a, _ in self.on]
        r_idx = [right.attribute_index(b) for _, b in self.on]
        out = CTable(left.name, left.schema)
        right_tuples = list(right)
        for lt in left:
            parts = [lt.condition]
            dead = False
            for rt in right_tuples:
                eqs = []
                mismatch = False
                for li, ri in zip(l_idx, r_idx):
                    cond = Comparison(lt.values[li], "=", rt.values[ri]).constant_fold()
                    if isinstance(cond, FalseCond):
                        mismatch = True
                        break
                    if not isinstance(cond, TrueCond):
                        eqs.append(cond)
                if mismatch:
                    continue
                match_cond = conjoin(eqs + [rt.condition])
                if isinstance(match_cond, FalseCond):
                    continue
                negated = match_cond.negate()
                if isinstance(negated, FalseCond):
                    dead = True
                    break
                parts.append(negated)
            if dead:
                ctx.stats.tuples_pruned += 1
                continue
            combined = conjoin(parts)
            if ctx.keep(combined):
                out.add(lt.values, combined)
                ctx.stats.tuples_generated += 1
        return ctx.finish(out)


class Union(PlanNode):
    """Set union of union-compatible children."""

    def __init__(self, children: Sequence[PlanNode], name: str = "union"):
        if not children:
            raise ValueError("union of zero children")
        self.children = list(children)
        self.name = name

    def schema(self, db: Database) -> Tuple[str, ...]:
        schemas = [c.schema(db) for c in self.children]
        if any(len(s) != len(schemas[0]) for s in schemas):
            raise ValueError("union children have different arities")
        return schemas[0]

    def execute(self, db: Database, ctx: ExecutionContext) -> CTable:
        out = CTable(self.name, self.schema(db))
        for child in self.children:
            for tup in child.execute(db, ctx):
                out.add(tup)
        return out


class Distinct(PlanNode):
    """Merge tuples with identical data parts by disjoining conditions."""

    def __init__(self, child: PlanNode):
        self.child = child

    def schema(self, db: Database) -> Tuple[str, ...]:
        return self.child.schema(db)

    def execute(self, db: Database, ctx: ExecutionContext) -> CTable:
        src = self.child.execute(db, ctx)
        merged: Dict[Tuple[Term, ...], List[Condition]] = {}
        order: List[Tuple[Term, ...]] = []
        for tup in src:
            key = tup.data_key()
            if key not in merged:
                merged[key] = []
                order.append(key)
            merged[key].append(tup.condition)
        out = CTable(src.name, src.schema)
        for key in order:
            cond = disjoin(merged[key])
            if ctx.keep(cond):
                out.add(key, cond)
        return ctx.finish(out)


def evaluate_plan(
    plan: PlanNode,
    db: Database,
    solver: Optional[ConditionSolver] = None,
    prune: bool = True,
    stats: Optional[EvalStats] = None,
    jobs: int = 1,
    executor=None,
) -> CTable:
    """Execute a plan, timing relational work as "sql" seconds.

    Solver time is subtracted out of the wall measurement so the two
    buckets are disjoint, matching Table 4's reporting.  ``jobs > 1``
    switches pruning operators to batched (sharded) pruning of whole
    operator outputs; see :class:`ExecutionContext`.
    """
    ctx = ExecutionContext(solver=solver, prune=prune, stats=stats, jobs=jobs,
                           executor=executor)
    solver_before = ctx.stats.solver_seconds
    watch = Stopwatch()
    with watch.measure():
        result = plan.execute(db, ctx)
    solver_delta = ctx.stats.solver_seconds - solver_before
    ctx.stats.sql_seconds += max(0.0, watch.seconds - solver_delta)
    return result
