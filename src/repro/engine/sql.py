"""A mini-SQL front-end for c-tables.

The paper implements fauré-log by rewriting onto PostgreSQL.  This module
is the stand-in for that surface: a small SQL dialect whose SELECT
queries run against c-tables with the extended (condition-aware)
semantics of §3.  Supported statements::

    CREATE TABLE name (col1, col2, ...)
    DROP TABLE name
    INSERT INTO name VALUES (term, term, ...) [CONDITION <condition>]
    DELETE FROM name [WHERE <condition over columns>]
    UPDATE name SET col = term [, col = term ...] [WHERE <condition>]
    SELECT <cols | *> FROM t1 [a1] [, t2 [a2] ...]
        [WHERE <condition over columns>]
        [INTO result_name]

DELETE and UPDATE follow c-table semantics: a row whose entries only
*conditionally* match the WHERE clause splits — the affected version
exists under ``condition ∧ match`` and (for UPDATE) the untouched
original survives under ``condition ∧ ¬match``.

Terms and conditions use the shared syntax of
:mod:`repro.ctable.parse`; inside WHERE, identifiers resolve to columns
of the FROM relations (qualified ``alias.col`` or unqualified when
unambiguous), and anything else is a constant.  ``$x`` is a c-variable
wherever it appears — including inserted VALUES, which is how partial
rows enter the database.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..ctable.condition import Condition, TRUE
from ..ctable.parse import ParseError, TokenStream, parse_condition, parse_term, tokenize
from ..ctable.table import CTable, Database
from ..ctable.terms import Constant, Term
from ..solver.interface import ConditionSolver
from .algebra import (
    ColumnRef,
    ConditionSelection,
    PlanNode,
    Product,
    Projection,
    Rename,
    Scan,
    evaluate_plan,
)
from .stats import EvalStats

__all__ = ["SqlEngine", "SqlError"]


class SqlError(ValueError):
    """Statement-level error (unknown table, ambiguous column, ...)."""


class _Scope:
    """Column-name resolution for one FROM clause."""

    def __init__(self, relations: Sequence[Tuple[str, Tuple[str, ...]]]):
        # relations: (alias, schema) pairs; exported columns are
        # "alias.col"; unqualified names allowed when unambiguous.
        self.qualified: List[str] = []
        self.unqualified: Dict[str, Optional[str]] = {}
        for alias, schema in relations:
            for col in schema:
                q = f"{alias}.{col}"
                self.qualified.append(q)
                if col in self.unqualified:
                    self.unqualified[col] = None  # ambiguous
                else:
                    self.unqualified[col] = q

    def resolve(self, name: str) -> Optional[str]:
        if name in self.qualified:
            return name
        target = self.unqualified.get(name)
        if target is None and name in self.unqualified:
            raise SqlError(f"ambiguous column {name!r}")
        return target


class SqlEngine:
    """Executes mini-SQL statements against a c-table database."""

    def __init__(
        self,
        db: Optional[Database] = None,
        solver: Optional[ConditionSolver] = None,
        prune: bool = True,
        jobs: int = 1,
        executor=None,
    ):
        self.db = db if db is not None else Database()
        self.solver = solver
        self.prune = prune
        self.jobs = max(1, int(jobs))
        #: Shared shard executor for batch pruning; ``None`` lets each
        #: prune build a default supervised executor on demand.
        self.executor = executor
        self.stats = EvalStats()

    # -- public API --------------------------------------------------------

    def execute(self, statement: str) -> Optional[CTable]:
        """Run one statement; SELECT returns a result c-table."""
        stream = TokenStream(tokenize(statement), statement)
        tok = stream.peek()
        if tok[0] != "ident":
            raise SqlError(f"expected a statement keyword, got {tok[1]!r}")
        keyword = tok[1].upper()
        if keyword == "CREATE":
            self._create(stream)
            return None
        if keyword == "DROP":
            self._drop(stream)
            return None
        if keyword == "INSERT":
            self._insert(stream)
            return None
        if keyword == "DELETE":
            self._delete(stream)
            return None
        if keyword == "UPDATE":
            self._update(stream)
            return None
        if keyword == "SELECT":
            return self._select(stream)
        raise SqlError(f"unsupported statement {keyword!r}")

    def script(self, statements: str) -> Optional[CTable]:
        """Run ``;``-separated statements; returns the last SELECT result."""
        result = None
        for stmt in statements.split(";"):
            if stmt.strip():
                out = self.execute(stmt)
                if out is not None:
                    result = out
        return result

    # -- statement handlers ---------------------------------------------------

    def _ident(self, stream: TokenStream, what: str) -> str:
        tok = stream.peek()
        if tok[0] not in ("ident", "addr"):
            raise SqlError(f"expected {what}, got {tok[1]!r}")
        stream.next()
        return tok[1]

    def _keyword(self, stream: TokenStream, word: str) -> None:
        tok = stream.peek()
        if tok[0] != "ident" or tok[1].upper() != word:
            raise SqlError(f"expected {word}, got {tok[1]!r}")
        stream.next()

    def _create(self, stream: TokenStream) -> None:
        self._keyword(stream, "CREATE")
        self._keyword(stream, "TABLE")
        name = self._ident(stream, "table name")
        stream.expect("op", "(")
        columns = []
        while True:
            columns.append(self._ident(stream, "column name"))
            if stream.accept("op", ")"):
                break
            stream.expect("op", ",")
        if name in self.db:
            raise SqlError(f"table {name!r} already exists")
        self.db.create_table(name, columns)

    def _drop(self, stream: TokenStream) -> None:
        self._keyword(stream, "DROP")
        self._keyword(stream, "TABLE")
        name = self._ident(stream, "table name")
        self.db.drop_table(name)

    def _insert(self, stream: TokenStream) -> None:
        self._keyword(stream, "INSERT")
        self._keyword(stream, "INTO")
        name = self._ident(stream, "table name")
        self._keyword(stream, "VALUES")
        stream.expect("op", "(")
        values: List[Term] = []
        while True:
            values.append(parse_term(stream, resolve_ident=lambda n: Constant(n)))
            if stream.accept("op", ")"):
                break
            stream.expect("op", ",")
        condition: Condition = TRUE
        tok = stream.peek()
        if tok[0] == "ident" and tok[1].upper() == "CONDITION":
            stream.next()
            condition = parse_condition(stream, resolve_ident=lambda n: Constant(n))
        if not stream.exhausted:
            raise SqlError(f"trailing input after INSERT: {stream.peek()[1]!r}")
        table = self.db.table(name)
        table.add(values, condition)

    def _table_resolver(self, table: CTable):
        """Identifier resolution scoped to one table (DELETE/UPDATE WHERE)."""
        columns = set(table.schema)

        def resolver(name: str) -> Term:
            bare = name.split(".")[-1]
            if name in columns:
                return ColumnRef(name)
            if bare in columns and name == f"{table.name}.{bare}":
                return ColumnRef(bare)
            return Constant(name)

        return resolver

    def _where_template(self, stream: TokenStream, table: CTable) -> Optional[Condition]:
        tok = stream.peek()
        if tok[0] == "ident" and tok[1].upper() == "WHERE":
            stream.next()
            return parse_condition(stream, resolve_ident=self._table_resolver(table))
        return None

    def _keep(self, condition: Condition) -> bool:
        from ..ctable.condition import FalseCond

        if isinstance(condition, FalseCond):
            return False
        if self.solver is not None and self.prune:
            return self.solver.is_satisfiable(condition)
        return True

    def _delete(self, stream: TokenStream) -> None:
        from ..ctable.condition import conjoin
        from .algebra import resolve_condition

        self._keyword(stream, "DELETE")
        self._keyword(stream, "FROM")
        name = self._ident(stream, "table name")
        table = self.db.table(name)
        template = self._where_template(stream, table)
        if not stream.exhausted:
            raise SqlError(f"trailing input after DELETE: {stream.peek()[1]!r}")
        replacement = CTable(table.name, table.schema)
        schema = list(table.schema)
        for tup in table:
            match = (
                TRUE
                if template is None
                else resolve_condition(template, schema, tup.values)
            )
            survived = conjoin([tup.condition, match.negate()])
            if self._keep(survived):
                replacement.add(tup.values, survived)
        self.db.replace_table(replacement)

    def _update(self, stream: TokenStream) -> None:
        from ..ctable.condition import conjoin
        from .algebra import resolve_condition

        self._keyword(stream, "UPDATE")
        name = self._ident(stream, "table name")
        table = self.db.table(name)
        self._keyword(stream, "SET")
        assignments: List[Tuple[int, Term]] = []
        while True:
            column = self._ident(stream, "column name")
            index = table.attribute_index(column.split(".")[-1])
            stream.expect("op", "=")
            value = parse_term(stream, resolve_ident=lambda n: Constant(n))
            assignments.append((index, value))
            if not stream.accept("op", ","):
                break
        template = self._where_template(stream, table)
        if not stream.exhausted:
            raise SqlError(f"trailing input after UPDATE: {stream.peek()[1]!r}")
        replacement = CTable(table.name, table.schema)
        schema = list(table.schema)
        for tup in table:
            match = (
                TRUE
                if template is None
                else resolve_condition(template, schema, tup.values)
            )
            updated_cond = conjoin([tup.condition, match])
            if self._keep(updated_cond):
                values = list(tup.values)
                for index, value in assignments:
                    values[index] = value
                replacement.add(values, updated_cond)
            original_cond = conjoin([tup.condition, match.negate()])
            if self._keep(original_cond):
                replacement.add(tup.values, original_cond)
        self.db.replace_table(replacement)

    def _select(self, stream: TokenStream) -> CTable:
        self._keyword(stream, "SELECT")
        # -- output list
        star = stream.accept("op", "*") is not None
        outputs: List[Tuple[str, str]] = []  # (source column expr, output name)
        if not star:
            while True:
                col = self._ident(stream, "column")
                out_name = col.split(".")[-1]
                tok = stream.peek()
                if tok[0] == "ident" and tok[1].upper() == "AS":
                    stream.next()
                    out_name = self._ident(stream, "output name")
                outputs.append((col, out_name))
                if not stream.accept("op", ","):
                    break
        # -- FROM
        self._keyword(stream, "FROM")
        relations: List[Tuple[str, str]] = []  # (table, alias)
        while True:
            table = self._ident(stream, "table name")
            alias = table
            tok = stream.peek()
            if tok[0] == "ident" and tok[1].upper() not in ("WHERE", "INTO", "AS"):
                alias = self._ident(stream, "alias")
            elif tok[0] == "ident" and tok[1].upper() == "AS":
                stream.next()
                alias = self._ident(stream, "alias")
            relations.append((table, alias))
            if not stream.accept("op", ","):
                break

        plan = self._from_plan(relations)
        scope = _Scope(
            [(alias, self.db.table(table).schema) for table, alias in relations]
        )

        # -- WHERE
        tok = stream.peek()
        if tok[0] == "ident" and tok[1].upper() == "WHERE":
            stream.next()

            def resolver(name: str) -> Term:
                col = scope.resolve(name)
                if col is not None:
                    return ColumnRef(col)
                return Constant(name)

            template = parse_condition(stream, resolve_ident=resolver)
            plan = ConditionSelection(plan, template)

        # -- output projection
        if star:
            columns = list(plan.schema(self.db))
            out_names = [c.split(".")[-1] for c in columns]
            if len(set(out_names)) != len(out_names):
                out_names = columns  # keep qualified names on clash
        else:
            columns = []
            out_names = []
            for col, out_name in outputs:
                resolved = scope.resolve(col)
                if resolved is None:
                    raise SqlError(f"unknown column {col!r}")
                columns.append(resolved)
                out_names.append(out_name)
        plan = Projection(plan, columns)
        plan = Rename(plan, dict(zip(columns, out_names)), name="result")

        # -- INTO
        into: Optional[str] = None
        tok = stream.peek()
        if tok[0] == "ident" and tok[1].upper() == "INTO":
            stream.next()
            into = self._ident(stream, "result table name")
        if not stream.exhausted:
            raise SqlError(f"trailing input after SELECT: {stream.peek()[1]!r}")

        result = evaluate_plan(
            plan, self.db, solver=self.solver, prune=self.prune, stats=self.stats,
            jobs=self.jobs, executor=self.executor,
        )
        if into is not None:
            stored = CTable(into, result.schema)
            for tup in result:
                stored.add(tup)
            if into in self.db:
                self.db.drop_table(into)
            self.db.add_table(stored)
        return result

    def _from_plan(self, relations: List[Tuple[str, str]]) -> PlanNode:
        plans: List[PlanNode] = []
        for table, alias in relations:
            if table not in self.db:
                raise SqlError(f"unknown table {table!r}")
            schema = self.db.table(table).schema
            scan = Scan(table, alias)
            renamed = Rename(scan, {c: f"{alias}.{c}" for c in schema}, name=alias)
            plans.append(renamed)
        plan = plans[0]
        for nxt in plans[1:]:
            plan = Product(plan, nxt)
        return plan
