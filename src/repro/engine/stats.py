"""Timing and cardinality instrumentation for the evaluation pipeline.

The paper's Table 4 reports, per query, the *SQL time* (relational work:
generating data parts and attaching conditions) and the *Z3 time*
(deciding which generated tuples have contradictory conditions)
separately, plus the number of tuples generated.  :class:`EvalStats`
captures the same split for our engine so the benchmark harness can print
the paper's rows.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

from ..clock import phase_clock, use_cpu_clock

__all__ = ["EvalStats", "Stopwatch", "phase_clock", "use_cpu_clock"]


class Stopwatch:
    """Accumulating stopwatch with a context-manager interface."""

    def __init__(self) -> None:
        self.seconds = 0.0

    @contextmanager
    def measure(self) -> Iterator[None]:
        start = phase_clock()
        try:
            yield
        finally:
            self.seconds += phase_clock() - start

    def reset(self) -> None:
        self.seconds = 0.0


@dataclass
class EvalStats:
    """Per-evaluation accounting mirroring Table 4's columns."""

    sql_seconds: float = 0.0
    solver_seconds: float = 0.0
    tuples_generated: int = 0
    tuples_pruned: int = 0
    iterations: int = 0
    #: Tuples kept because their condition came back UNKNOWN under a
    #: resource governor (sound: pruning is only an optimisation).
    unknown_kept: int = 0
    #: Evaluations cut short by a budget/deadline (partial fixpoint).
    partial_results: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return self.sql_seconds + self.solver_seconds

    @property
    def degraded(self) -> bool:
        """Did any governed degradation fire during this evaluation?"""
        return self.unknown_kept > 0 or self.partial_results > 0

    def add(self, other: "EvalStats") -> None:
        self.sql_seconds += other.sql_seconds
        self.solver_seconds += other.solver_seconds
        self.tuples_generated += other.tuples_generated
        self.tuples_pruned += other.tuples_pruned
        self.iterations += other.iterations
        self.unknown_kept += other.unknown_kept
        self.partial_results += other.partial_results
        for k, v in other.extra.items():
            self.extra[k] = self.extra.get(k, 0.0) + v

    def reset(self) -> None:
        self.sql_seconds = 0.0
        self.solver_seconds = 0.0
        self.tuples_generated = 0
        self.tuples_pruned = 0
        self.iterations = 0
        self.unknown_kept = 0
        self.partial_results = 0
        self.extra.clear()

    def row(self) -> Dict[str, float]:
        """A flat dict suitable for tabular reporting."""
        return {
            "sql": round(self.sql_seconds, 4),
            "solver": round(self.solver_seconds, 4),
            "tuples": self.tuples_generated,
            "pruned": self.tuples_pruned,
            "unknown": self.unknown_kept,
        }
