"""The paper's three-phase evaluation pipeline.

§6 describes the PostgreSQL implementation as three steps:

1. generate the **data part** of the result c-table in pure SQL;
2. attach the proper **conditions** (including fauré-log pattern
   matching) by a sequence of SQL UPDATEs;
3. invoke **Z3** to remove tuples with contradictory conditions.

Our algebra fuses steps 1–2 (each operator emits data and condition
together — semantically identical, since conditions are a function of the
matched tuples), so the pipeline exposes the same two execution
strategies the evaluation cares about:

* :func:`run_lazy` — relational work first, one solver pass at the end
  (the paper's staging; the "sql"/"z3" split of Table 4);
* :func:`run_eager` — solver-prune inside every operator, keeping
  intermediate relations minimal (the ablation variant).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..ctable.table import CTable, Database
from ..solver.interface import ConditionSolver
from .algebra import PlanNode, evaluate_plan
from .stats import EvalStats, Stopwatch

__all__ = ["run_lazy", "run_eager", "solver_prune"]


def _memo_snapshot(solver: ConditionSolver) -> Tuple[int, int, int, int, int]:
    s = solver.stats
    return (
        s.memo_hits,
        s.memo_misses,
        s.canonical_collapses,
        s.fast_path_hits,
        s.fast_path_misses,
    )


def _record_memo_delta(
    stats: EvalStats,
    solver: ConditionSolver,
    before: Tuple[int, int, int, int, int],
) -> None:
    """Fold this phase's memo and fast-path activity into ``stats.extra``."""
    after = _memo_snapshot(solver)
    keys = (
        "memo_hits",
        "memo_misses",
        "canonical_collapses",
        "fast_path_hits",
        "fast_path_misses",
    )
    for key, prev, now in zip(keys, before, after):
        delta = now - prev
        if delta:
            stats.extra[key] = stats.extra.get(key, 0) + delta


def solver_prune(
    table: CTable,
    solver: ConditionSolver,
    stats: Optional[EvalStats] = None,
    jobs: int = 1,
    executor=None,
    precheck=None,
) -> CTable:
    """Phase 3: drop tuples whose conditions are unsatisfiable.

    Pruning is an optimisation, never a correctness requirement: a
    tuple whose condition comes back ``UNKNOWN`` under a resource
    governor is *kept* (counted in ``stats.unknown_kept``), leaving the
    result loss-less but less simplified.

    The table is pruned by canonical equivalence class — one solver
    decision per distinct condition form, verdicts fanned back to the
    member tuples — and with ``jobs > 1`` residual undecided classes
    are sharded across a worker pool (:mod:`repro.parallel.batch`).
    The output table is identical for every ``jobs`` value.

    With a ``precheck`` (:class:`~repro.analysis.optimize.ConditionPrecheck`),
    statically classified conditions are decided without a solver call:
    only the residue reaches the solver.  Definite precheck verdicts
    provably agree with the solver's, and row order is preserved, so the
    output is byte-identical with the precheck on or off.
    """
    from ..parallel.batch import prune_batched

    stats = stats if stats is not None else EvalStats()
    watch = Stopwatch()
    before = _memo_snapshot(solver)
    with watch.measure():
        if precheck is not None:
            hints = [precheck.sat_hint(tup.condition) for tup in table.tuples()]
            residue = CTable(table.name, table.schema)
            for tup, hint in zip(table.tuples(), hints):
                if hint is None:
                    residue.add(list(tup.values), tup.condition)
            kept_residue = prune_batched(
                residue, solver, stats, jobs=jobs, executor=executor
            )
            kept = {(t.values, t.condition) for t in kept_residue.tuples()}
            out = CTable(table.name, table.schema)
            for tup, hint in zip(table.tuples(), hints):
                if hint is True:
                    stats.extra["static_sat_hits"] = (
                        stats.extra.get("static_sat_hits", 0) + 1
                    )
                    out.add(list(tup.values), tup.condition)
                elif hint is False:
                    stats.extra["static_unsat_hits"] = (
                        stats.extra.get("static_unsat_hits", 0) + 1
                    )
                    stats.tuples_pruned += 1
                elif (tup.values, tup.condition) in kept:
                    out.add(list(tup.values), tup.condition)
        else:
            out = prune_batched(table, solver, stats, jobs=jobs, executor=executor)
    stats.solver_seconds += watch.seconds
    _record_memo_delta(stats, solver, before)
    return out


def run_lazy(
    plan: PlanNode,
    db: Database,
    solver: ConditionSolver,
    stats: Optional[EvalStats] = None,
    jobs: int = 1,
    executor=None,
    precheck=None,
) -> Tuple[CTable, EvalStats]:
    """Phases 1–2 without pruning, then one final solver pass (phase 3)."""
    stats = stats if stats is not None else EvalStats()
    if solver.governor is not None:
        solver.governor.ensure_started()
    if executor is None and jobs > 1:
        from ..parallel.supervisor import SupervisedExecutor

        executor = SupervisedExecutor(jobs)
    raw = evaluate_plan(plan, db, solver=None, prune=False, stats=stats)
    pruned = solver_prune(
        raw, solver, stats, jobs=jobs, executor=executor, precheck=precheck
    )
    return pruned, stats


def run_eager(
    plan: PlanNode,
    db: Database,
    solver: ConditionSolver,
    stats: Optional[EvalStats] = None,
    jobs: int = 1,
    executor=None,
) -> Tuple[CTable, EvalStats]:
    """Prune inside every operator (intermediate relations stay small)."""
    stats = stats if stats is not None else EvalStats()
    if solver.governor is not None:
        solver.governor.ensure_started()
    if executor is None and jobs > 1:
        # One supervised executor shared across every operator's prune,
        # so failure accounting accumulates over the whole evaluation.
        from ..parallel.supervisor import SupervisedExecutor

        executor = SupervisedExecutor(jobs)
    before = _memo_snapshot(solver)
    result = evaluate_plan(
        plan, db, solver=solver, prune=True, stats=stats, jobs=jobs, executor=executor
    )
    _record_memo_delta(stats, solver, before)
    return result, stats
