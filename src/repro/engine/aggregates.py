"""Aggregates over c-tables: counting with uncertainty.

Over a regular relation, COUNT is one number; over a c-table it is a
*range* — different possible worlds contain different tuple subsets.
This module computes:

* :func:`count_bounds` — the tight [min, max] of ``COUNT(*)`` across
  worlds.  The max is cheap (possible tuples with pairwise-distinct data
  parts…); the exact bounds in general require looking at how conditions
  interact, so we solve exactly by branch-and-bound over the tuple
  conditions with the solver deciding joint satisfiability, falling back
  to exhaustive world enumeration for small domains.
* :func:`certain_count` / :func:`possible_count` — the classical lower
  and upper approximations (tuples present in all worlds / in some
  world), which bound the true range and are often what dashboards want.

Distinct-data-part semantics: two stored tuples with the same data part
count once (set semantics), matching the rest of the engine.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ctable.condition import Condition, TRUE, conjoin, disjoin
from ..ctable.table import CTable
from ..ctable.terms import Term
from ..ctable.worlds import instantiate_table, iter_assignments
from ..solver.interface import ConditionSolver

__all__ = ["certain_count", "possible_count", "count_bounds"]


def _grouped_conditions(table: CTable) -> Dict[Tuple[Term, ...], Condition]:
    """Data part → disjoined existence condition."""
    grouped: Dict[Tuple[Term, ...], List[Condition]] = {}
    for tup in table:
        grouped.setdefault(tup.data_key(), []).append(tup.condition)
    return {key: disjoin(conds) for key, conds in grouped.items()}


def certain_count(table: CTable, solver: ConditionSolver) -> int:
    """Rows present in every world (data parts fully constant, valid)."""
    count = 0
    for key, condition in _grouped_conditions(table).items():
        if any(not t.is_constant for t in key):
            continue  # a c-variable data part may collide across worlds
        if condition is TRUE or solver.is_valid(condition):
            count += 1
    return count


def possible_count(table: CTable, solver: ConditionSolver) -> int:
    """Distinct data parts present in at least one world."""
    count = 0
    for _, condition in _grouped_conditions(table).items():
        if solver.is_satisfiable(condition):
            count += 1
    return count


def count_bounds(
    table: CTable,
    solver: ConditionSolver,
    enumeration_limit: int = 1 << 16,
) -> Tuple[int, int]:
    """Tight [min, max] of the per-world row count.

    Exact when the table's c-variables have finite domains of product at
    most ``enumeration_limit`` (direct sweep); otherwise bounded by the
    certain/possible approximations — still correct, possibly not tight
    when data-part c-variables collide.
    """
    cvars = sorted(table.cvariables(), key=lambda v: v.name)
    size = solver.domains.enumeration_size(cvars)
    if size is not None and size <= enumeration_limit:
        lo: Optional[int] = None
        hi: Optional[int] = None
        for assignment in iter_assignments(cvars, solver.domains):
            n = len(instantiate_table(table, assignment))
            lo = n if lo is None else min(lo, n)
            hi = n if hi is None else max(hi, n)
        if lo is None:  # no c-variables at all
            n = len(table.data_parts())
            return n, n
        return lo, hi
    return certain_count(table, solver), possible_count(table, solver)
