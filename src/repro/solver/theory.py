"""Conjunction-level theory solver.

Decides (un)satisfiability of a *conjunction of atoms* over the c-domain:
comparisons between c-variables and constants, plus linear atoms.  This is
the "T" in the DPLL(T) driver of :mod:`repro.solver.dpll` and replaces the
paper's use of Z3 for pruning contradictory tuple conditions.

The procedure layers:

1. **Equality**: union–find over c-variables and constants; merging two
   distinct constants is a conflict.
2. **Disequality**: recorded per representative pair; a disequality whose
   two sides collapse into one class is a conflict.
3. **Domains**: each class keeps the intersection of its members'
   declared finite domains (and the pinned constant, if any); an empty
   intersection is a conflict.  A clique of pairwise-disequal classes
   sharing a finite domain smaller than the clique is detected by the
   finite-enumeration backend, not here.
4. **Ordering** (numerics): interval bounds per class from comparisons
   with constants, plus a Bellman–Ford pass over variable–variable
   ordering edges (difference logic: ``x < y``, ``x <= y``) to detect
   cycles with net strictness.
5. **Linear atoms**: interval reasoning (min/max of the sum against the
   bound); exact treatment is delegated to enumeration when domains are
   finite.

Verdicts are sound: :data:`UNSAT` is definitive.  :data:`SAT` is
definitive whenever every variable involved is finite-domain (the caller
routes those through :mod:`repro.solver.enumerate`); for unbounded
domains the checks above are complete for the fragment the paper uses
(equality + disequality + difference-logic orderings + interval linear
reasoning), which we document as the supported condition language.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..ctable.condition import Comparison, Condition, FalseCond, LinearAtom, TrueCond
from ..ctable.terms import Constant, CVariable, Term
from .domains import Domain, DomainMap, FiniteDomain, IntRange

__all__ = ["TheoryResult", "check_conjunction", "UnsupportedCondition"]

#: Tri-state verdicts.
SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"

TheoryResult = str


class UnsupportedCondition(ValueError):
    """Raised when a condition falls outside the supported fragment."""


class _UnionFind:
    """Union–find over terms with constant pinning."""

    def __init__(self) -> None:
        self.parent: Dict[Term, Term] = {}
        self.pinned: Dict[Term, Constant] = {}

    def add(self, t: Term) -> None:
        if t not in self.parent:
            self.parent[t] = t
            if isinstance(t, Constant):
                self.pinned[t] = t

    def find(self, t: Term) -> Term:
        self.add(t)
        root = t
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[t] != root:
            self.parent[t], t = root, self.parent[t]
        return root

    def union(self, a: Term, b: Term) -> bool:
        """Merge classes; returns False on constant conflict."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return True
        ca, cb = self.pinned.get(ra), self.pinned.get(rb)
        if ca is not None and cb is not None and ca != cb:
            return False
        self.parent[ra] = rb
        if ca is not None:
            self.pinned[rb] = ca
        return True

    def constant_of(self, t: Term) -> Optional[Constant]:
        return self.pinned.get(self.find(t))

    def classes(self) -> Dict[Term, List[Term]]:
        out: Dict[Term, List[Term]] = {}
        for t in self.parent:
            out.setdefault(self.find(t), []).append(t)
        return out


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _domain_bounds(dom: Domain) -> Tuple[float, float]:
    """Numeric [lo, hi] bounds implied by a domain (±inf when unbounded)."""
    if isinstance(dom, IntRange):
        return float(dom.lo), float(dom.hi)
    if isinstance(dom, FiniteDomain):
        nums = [v.value for v in dom.values() if _is_number(v.value)]
        if not nums:
            return math.inf, -math.inf  # no numeric value possible
        return float(min(nums)), float(max(nums))
    return -math.inf, math.inf


def check_conjunction(
    atoms: Iterable[Condition],
    domains: DomainMap,
) -> TheoryResult:
    """Decide a conjunction of atomic conditions.

    Returns ``'unsat'`` on definite contradiction, ``'sat'`` when the
    propagation layers find no conflict (definitive for the supported
    fragment), and ``'unknown'`` only for constructs the propagation
    cannot certify (the caller then falls back to enumeration or reports
    the condition as unsupported).
    """
    uf = _UnionFind()
    disequalities: List[Tuple[Term, Term]] = []
    order_edges: List[Tuple[Term, Term, bool]] = []  # (a, b, strict) meaning a < b / a <= b
    linear: List[LinearAtom] = []

    for atom in atoms:
        if isinstance(atom, TrueCond):
            continue
        if isinstance(atom, FalseCond):
            return UNSAT
        if isinstance(atom, LinearAtom):
            linear.append(atom)
            for v, _ in atom.coeffs:
                uf.add(v)
            continue
        if not isinstance(atom, Comparison):
            raise UnsupportedCondition(f"not an atom: {atom!r}")
        lhs, op, rhs = atom.lhs, atom.op, atom.rhs
        if lhs.is_variable or rhs.is_variable:
            raise UnsupportedCondition(f"program variable in condition: {atom}")
        uf.add(lhs)
        uf.add(rhs)
        if op == "=":
            if not uf.union(lhs, rhs):
                return UNSAT
        elif op == "!=":
            disequalities.append((lhs, rhs))
        elif op == "<":
            order_edges.append((lhs, rhs, True))
        elif op == "<=":
            order_edges.append((lhs, rhs, False))
        elif op == ">":
            order_edges.append((rhs, lhs, True))
        elif op == ">=":
            order_edges.append((rhs, lhs, False))

    # Disequality check against the final equality classes.
    for a, b in disequalities:
        ra, rb = uf.find(a), uf.find(b)
        if ra == rb:
            return UNSAT

    # Domain feasibility per class.
    class_domain: Dict[Term, Optional[Set[Constant]]] = {}
    for rep, members in uf.classes().items():
        pinned = uf.pinned.get(rep)
        feasible: Optional[Set[Constant]] = None  # None == unconstrained
        for m in members:
            if isinstance(m, CVariable):
                dom = domains.domain_of(m)
                if dom.is_finite:
                    vals = set(dom.values())
                    feasible = vals if feasible is None else feasible & vals
        if pinned is not None:
            if feasible is not None and pinned not in feasible:
                return UNSAT
            feasible = {pinned}
        if feasible is not None and not feasible:
            return UNSAT
        class_domain[rep] = feasible

    # Disequality against singleton feasible sets: x != y with both pinned
    # to the same single value.
    for a, b in disequalities:
        fa = class_domain.get(uf.find(a))
        fb = class_domain.get(uf.find(b))
        if fa is not None and fb is not None and len(fa) == 1 and fa == fb:
            return UNSAT

    if order_edges and not _orderings_consistent(order_edges, uf, class_domain, domains):
        return UNSAT

    if linear and not _linear_feasible(linear, uf, class_domain, domains):
        return UNSAT

    return SAT


def _numeric_interval(
    rep: Term,
    feasible: Optional[Set[Constant]],
    members: List[Term],
    domains: DomainMap,
) -> Tuple[float, float]:
    """Numeric bounds of one equality class."""
    if feasible is not None:
        nums = [c.value for c in feasible if _is_number(c.value)]
        if not nums:
            return math.inf, -math.inf
        return float(min(nums)), float(max(nums))
    lo, hi = -math.inf, math.inf
    for m in members:
        if isinstance(m, CVariable):
            dlo, dhi = _domain_bounds(domains.domain_of(m))
            lo, hi = max(lo, dlo), min(hi, dhi)
    return lo, hi


def _orderings_consistent(
    edges: List[Tuple[Term, Term, bool]],
    uf: _UnionFind,
    class_domain: Dict[Term, Optional[Set[Constant]]],
    domains: DomainMap,
) -> bool:
    """Difference-logic consistency of ordering atoms.

    Works on equality-class representatives.  Constants participate via
    their pinned value; classes carry interval bounds.  A negative-ish
    cycle (a cycle whose edges include a strict one) is a contradiction,
    as is an interval emptied by bound propagation.
    """
    classes = uf.classes()
    lo: Dict[Term, float] = {}
    hi: Dict[Term, float] = {}
    nodes: Set[Term] = set()
    for a, b, _ in edges:
        nodes.add(uf.find(a))
        nodes.add(uf.find(b))
    for rep in nodes:
        members = classes.get(rep, [rep])
        pinned = uf.pinned.get(rep)
        if pinned is not None:
            if not _is_number(pinned.value):
                # Ordering over non-numeric constants: compare lexically
                # only in the all-constant case, handled below.
                lo[rep], hi[rep] = math.nan, math.nan
            else:
                lo[rep] = hi[rep] = float(pinned.value)
        else:
            lo[rep], hi[rep] = _numeric_interval(
                rep, class_domain.get(rep), members, domains
            )

    rep_edges = [(uf.find(a), uf.find(b), strict) for a, b, strict in edges]

    # Integer granularity: strict edges between integer-valued classes
    # separate the bounds by a whole unit.
    def is_integer_class(rep: Term) -> bool:
        pinned = uf.pinned.get(rep)
        if pinned is not None:
            return isinstance(pinned.value, int) and not isinstance(pinned.value, bool)
        feasible = class_domain.get(rep)
        if feasible is not None:
            return all(
                isinstance(c.value, int) and not isinstance(c.value, bool)
                for c in feasible
            )
        for member in classes.get(rep, [rep]):
            if isinstance(member, CVariable):
                dom = domains.domain_of(member)
                if isinstance(dom, IntRange):
                    return True
                if isinstance(dom, FiniteDomain) and all(
                    isinstance(c.value, int) and not isinstance(c.value, bool)
                    for c in dom.values()
                ):
                    return True
        return False

    integer_node = {rep: is_integer_class(rep) for rep in nodes}

    # All-constant comparisons (including strings) check directly.
    remaining: List[Tuple[Term, Term, bool]] = []
    for a, b, strict in rep_edges:
        ca, cb = uf.pinned.get(a), uf.pinned.get(b)
        if ca is not None and cb is not None:
            try:
                ok = ca.value < cb.value if strict else ca.value <= cb.value
            except TypeError:
                return False
            if not ok:
                return False
        else:
            remaining.append((a, b, strict))

    if not remaining:
        return True

    for rep in nodes:
        if math.isnan(lo.get(rep, 0.0)):
            # Non-numeric pinned constant mixed with variable ordering.
            return False

    # Bound propagation to a fixpoint.  Strict edges between integer
    # classes separate bounds by a whole unit; a propagation that keeps
    # changing past n rounds implies a strict cycle.
    n = len(nodes) + 1
    for round_idx in range(n * 4 + 1):
        changed = False
        for a, b, strict in remaining:
            gap = 1.0 if strict and integer_node[a] and integer_node[b] else 0.0
            if hi[a] > hi[b] - gap:
                hi[a] = hi[b] - gap
                changed = True
            if lo[b] < lo[a] + gap:
                lo[b] = lo[a] + gap
                changed = True
            if lo[a] > hi[a] or lo[b] > hi[b]:
                return False
        if not changed:
            break
        if round_idx == n * 4:
            return False

    for a, b, strict in remaining:
        if strict and lo[a] == hi[a] == lo[b] == hi[b]:
            return False
    # Strict-cycle detection: collapse <= SCCs, any strict edge inside an
    # SCC of the ordering graph is a contradiction.
    return not _strict_cycle(remaining)


def _strict_cycle(edges: List[Tuple[Term, Term, bool]]) -> bool:
    """True when the ordering graph has a cycle containing a strict edge."""
    adj: Dict[Term, List[Tuple[Term, bool]]] = {}
    for a, b, strict in edges:
        adj.setdefault(a, []).append((b, strict))
        adj.setdefault(b, [])

    index: Dict[Term, int] = {}
    low: Dict[Term, int] = {}
    on_stack: Set[Term] = set()
    stack: List[Term] = []
    counter = [0]
    scc_of: Dict[Term, int] = {}
    scc_counter = [0]

    def strongconnect(v: Term) -> None:
        work = [(v, iter(adj[v]))]
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w, _ in it:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(adj[w])))
                    advanced = True
                    break
                if w in on_stack:
                    low[node] = min(low[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc_of[w] = scc_counter[0]
                    if w == node:
                        break
                scc_counter[0] += 1

    for v in adj:
        if v not in index:
            strongconnect(v)

    return any(strict and scc_of[a] == scc_of[b] for a, b, strict in edges)


def _linear_feasible(
    atoms: List[LinearAtom],
    uf: _UnionFind,
    class_domain: Dict[Term, Optional[Set[Constant]]],
    domains: DomainMap,
) -> bool:
    """Interval check of linear atoms (sound, conservative)."""
    classes = uf.classes()
    for atom in atoms:
        smin = 0.0
        smax = 0.0
        for v, coeff in atom.coeffs:
            rep = uf.find(v)
            members = classes.get(rep, [v])
            lo, hi = _numeric_interval(rep, class_domain.get(rep), members, domains)
            pinned = uf.pinned.get(rep)
            if pinned is not None:
                if not _is_number(pinned.value):
                    return False
                lo = hi = float(pinned.value)
            if lo > hi:
                return False
            if coeff >= 0:
                smin += coeff * lo
                smax += coeff * hi
            else:
                smin += coeff * hi
                smax += coeff * lo
        b = atom.bound
        op = atom.op
        if op == "=" and (b < smin or b > smax):
            return False
        if op == "!=" and smin == smax == b:
            return False
        if op == "<" and smin >= b:
            return False
        if op == "<=" and smin > b:
            return False
        if op == ">" and smax <= b:
            return False
        if op == ">=" and smax < b:
            return False
    return True
