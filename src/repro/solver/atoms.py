"""Interval/atom semi-decision procedure — the solver's fast path.

This module is the shared home of the sound interval + equality
abstract domain that used to live in :mod:`repro.analysis.abstract`
(which now re-exports it), promoted into the solver package as the
first tier of :class:`~repro.solver.interface.ConditionSolver`'s
decision ladder.

Two layers live here:

* the **domain-generic** one-sided provers :func:`prove_unsat` /
  :func:`prove_valid` / :func:`abstract_sat` — sound for *every* domain
  map, used unchanged by the lint pipeline (F010/F011); and
* the **domain-aware** semi-decision procedure :func:`fast_sat`, which
  additionally consults a :class:`~repro.solver.domains.DomainMap` to
  answer definite SAT/UNSAT on the common-case conditions of the
  c-table hot path without any search, in the spirit of Delta-net's
  range atomization: equality chains collapse under a union-find,
  ``var op const`` literals pool into one interval per equivalence
  class, declared domains contribute their own interval/value atoms,
  and unit-coefficient linear atoms (the §4 failure-pattern encodings
  ``Σ x̄ᵢ op k``) reduce to integer interval arithmetic over the
  achievable-sum range.

Soundness contract of :func:`fast_sat` (see docs/PERFORMANCE.md):

* ``False`` (UNSAT) is only returned from checks that are pointwise
  refutations — the structural contradictions of the generic layer,
  pinned constants outside a member's declared domain, equivalence
  classes whose candidate value set is exactly computed and empty, and
  linear atoms whose bound falls outside the achievable-sum interval;
* ``True`` (SAT) is only returned after a *witness* assignment has
  been constructed and verified with ``Condition.evaluate`` — a bug in
  the witness builder can therefore only cause a miss (``None``),
  never a wrong verdict;
* ``None`` means "outside the fast fragment": the caller falls back to
  enumeration/DPLL exactly as before.
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ctable.condition import (
    _FLIPPED_OP,
    And,
    Comparison,
    Condition,
    FalseCond,
    LinearAtom,
    Or,
    TrueCond,
    conjoin,
)
from ..ctable.terms import Constant, CVariable, Term, Variable
from .canonical import _Group, _cmp, canonicalize
from .domains import Domain, DomainMap, FiniteDomain, IntRange

__all__ = [
    "AbstractResult",
    "abstract_sat",
    "prove_unsat",
    "prove_valid",
    "fast_sat",
    "fast_implies",
]

#: Maximum case splits (product of disjunct counts) expanded inside one
#: conjunction before the verdict degrades to UNKNOWN.
_SPLIT_BUDGET = 64

#: Maximum recursion depth through nested ∧/∨ alternations.
_DEPTH_BUDGET = 6

#: Maximum candidate values scanned per equivalence class when the fast
#: path intersects declared domains with the pooled interval literals.
_CANDIDATE_BUDGET = 128


class AbstractResult(enum.Enum):
    """Verdict of the abstract analysis; UNKNOWN is always permitted."""

    UNSAT = "unsat"
    VALID = "valid"
    UNKNOWN = "unknown"


class _UnionFind:
    """Union-find over terms (program variables and c-variables alike)."""

    def __init__(self) -> None:
        self._parent: Dict[Term, Term] = {}

    def find(self, term: Term) -> Term:
        parent = self._parent.get(term, term)
        if parent is term:
            return term
        root = self.find(parent)
        self._parent[term] = root
        return root

    def union(self, a: Term, b: Term) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra is not rb and ra != rb:
            self._parent[ra] = rb


def _identity(term: Term) -> Term:
    return term


def _is_unknown_term(term: Term) -> bool:
    return isinstance(term, (CVariable, Variable))


def _strict_cycle(
    edges: List[Tuple[Term, Term, bool]], uf: _UnionFind
) -> bool:
    """True when the </≤ graph has a cycle through a strict edge.

    Edges are (smaller, larger, strict) over union-find representatives.
    A strict self-loop (x < x after equality merging) is the degenerate
    case.  The search is a DFS reachability check per strict edge —
    fine at lint scale (conditions have tens of atoms).
    """
    adjacency: Dict[Term, Set[Term]] = {}
    for lo, hi, _ in edges:
        adjacency.setdefault(uf.find(lo), set()).add(uf.find(hi))
    for lo, hi, strict in edges:
        if not strict:
            continue
        lo, hi = uf.find(lo), uf.find(hi)
        if lo == hi:
            return True  # x < x
        # strict edge lo -> hi: contradiction if hi reaches lo again.
        seen: Set[Term] = set()
        stack = [hi]
        while stack:
            node = stack.pop()
            if node == lo:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(adjacency.get(node, ()))
    return False


def _conjunction_unsat(children: Sequence[Condition], depth: int) -> bool:
    """Sound unsatisfiability check for a conjunction of canonical facts."""
    uf = _UnionFind()
    var_const: List[Comparison] = []
    neq_pairs: List[Tuple[Term, Term]] = []
    order_edges: List[Tuple[Term, Term, bool]] = []  # (lo, hi, strict)
    linear: List[LinearAtom] = []
    disjunctions: List[Or] = []

    for child in children:
        if isinstance(child, FalseCond):
            return True
        if isinstance(child, TrueCond):
            continue
        if isinstance(child, Or):
            disjunctions.append(child)
            continue
        if isinstance(child, And):  # canonical forms are flat, but be safe
            if _conjunction_unsat(child.children, depth):
                return True
            continue
        if isinstance(child, LinearAtom):
            linear.append(child)
            continue
        if not isinstance(child, Comparison):
            continue  # unknown node kind: ignore, stays sound
        lhs, op, rhs = child.lhs, child.op, child.rhs
        if isinstance(lhs, Constant) and _is_unknown_term(rhs):
            # Normalize constant-left atoms so the pooling below sees
            # every var-vs-const fact in one orientation.
            lhs, op, rhs = rhs, _FLIPPED_OP[op], lhs
            child = Comparison(lhs, op, rhs)
            lhs, op, rhs = child.lhs, child.op, child.rhs
        if _is_unknown_term(lhs) and isinstance(rhs, Constant):
            var_const.append(child)
        elif _is_unknown_term(lhs) and _is_unknown_term(rhs):
            if op == "=":
                uf.union(lhs, rhs)
            elif op == "!=":
                neq_pairs.append((lhs, rhs))
            elif op == "<":
                order_edges.append((lhs, rhs, True))
            elif op == "<=":
                order_edges.append((lhs, rhs, False))
            elif op == ">":
                order_edges.append((rhs, lhs, True))
            elif op == ">=":
                order_edges.append((rhs, lhs, False))
        # Constant-vs-constant atoms were folded away by canonicalize.

    # Pool the var-op-const literals of each equivalence class.
    groups: Dict[Term, _Group] = {}
    for cmp_atom in var_const:
        rep = uf.find(cmp_atom.lhs)
        group = groups.get(rep)
        if group is None:
            anchor = rep if isinstance(rep, CVariable) else CVariable(f"_class_{id(rep)}")
            group = _Group(anchor)
            groups[rep] = group
        assert isinstance(cmp_atom.rhs, Constant)
        group.add(cmp_atom.op, cmp_atom.rhs.value)
    for group in groups.values():
        if group.tighten_and() is None:
            return True

    # Disequalities: within one class, or between constant-pinned classes.
    def pinned(rep: Term) -> Optional[object]:
        group = groups.get(rep)
        if group is not None and group.eqs:
            return group.eqs[0]
        return None

    for a, b in neq_pairs:
        ra, rb = uf.find(a), uf.find(b)
        if ra == rb:
            return True  # x = y ∧ x ≠ y
        va, vb = pinned(ra), pinned(rb)
        if va is not None and vb is not None and va == vb:
            return True  # both pinned to the same constant

    # Order comparisons between constant-pinned classes, plus equal
    # classes under a strict order, plus strict cycles.
    for lo, hi, strict in order_edges:
        rlo, rhi = uf.find(lo), uf.find(hi)
        if rlo == rhi and strict:
            return True  # x = y ∧ x < y
        vlo, vhi = pinned(rlo), pinned(rhi)
        if vlo is not None and vhi is not None:
            try:
                holds = _cmp("<" if strict else "<=", vlo, vhi)
            except TypeError:
                holds = True  # incomparable payloads: no conclusion
            if not holds:
                return True
    if _strict_cycle(order_edges, uf):
        return True

    # Linear atoms: pool by coefficient vector, treat the linear form as
    # one pseudo-variable and reuse the interval tightening.
    by_coeffs: Dict[Tuple, _Group] = {}
    for atom in linear:
        group = by_coeffs.get(atom.coeffs)
        if group is None:
            group = _Group(CVariable(f"_lin_{len(by_coeffs)}"))
            by_coeffs[atom.coeffs] = group
        group.add(atom.op, atom.bound)
    for group in by_coeffs.values():
        if group.tighten_and() is None:
            return True

    # Case-split over nested disjunctions, under budget.
    if disjunctions and depth < _DEPTH_BUDGET:
        splits = 1
        for dis in disjunctions:
            splits *= len(dis.children)
        if splits <= _SPLIT_BUDGET:
            plain = [c for c in children if not isinstance(c, Or)]
            for combo in itertools.product(*[d.children for d in disjunctions]):
                arm = canonicalize(conjoin(plain + list(combo)))
                if not _unsat(arm, depth + 1):
                    return False
            return True
    return False


def _unsat(canonical: Condition, depth: int) -> bool:
    """Unsatisfiability of an already-canonical condition."""
    if isinstance(canonical, FalseCond):
        return True
    if isinstance(canonical, (TrueCond, Comparison, LinearAtom)):
        # canonicalize folds every decidable atom; a surviving atom has a
        # free unknown, hence a satisfying assignment over *some* value.
        # (Its domain might still rule it out — that is the solver's
        # business, and answering False here keeps us sound.)
        return False
    if depth >= _DEPTH_BUDGET:
        return False
    if isinstance(canonical, Or):
        return all(_unsat(child, depth + 1) for child in canonical.children)
    if isinstance(canonical, And):
        return _conjunction_unsat(canonical.children, depth)
    return False


def prove_unsat(condition: Condition) -> bool:
    """True only when ``condition`` is unsatisfiable over every domain."""
    return _unsat(canonicalize(condition), 0)


def prove_valid(condition: Condition) -> bool:
    """True only when ``condition`` holds under every assignment."""
    return _unsat(canonicalize(condition.negate()), 0)


def abstract_sat(condition: Condition) -> AbstractResult:
    """Classify a condition: proven UNSAT, proven VALID, else UNKNOWN."""
    if prove_unsat(condition):
        return AbstractResult.UNSAT
    if prove_valid(condition):
        return AbstractResult.VALID
    return AbstractResult.UNKNOWN


# ---------------------------------------------------------------------------
# Domain-aware fast path
# ---------------------------------------------------------------------------

#: Sentinel distinguishing "proven unsatisfiable" from "no conclusion"
#: in the internal search (a witness dict means satisfiable).
_UNSAT = object()


def _domain_admits(domain: Domain, value) -> bool:
    """Whether some element of ``domain`` equals ``value`` under ``==``.

    Deliberately *not* ``Domain.contains``: an :class:`IntRange` rejects
    ``5.0`` on type, but ``x = 5.0`` is satisfied by the in-range
    element ``5`` under numeric equality — and an unsound UNSAT here
    would be a wrong answer, not a miss.
    """
    if isinstance(domain, FiniteDomain):
        # Set-backed `==` membership over raw payloads: same semantics
        # as the Constant-wrapped test, minus the wrapper construction
        # (this runs per candidate on the dedup hot path).
        return domain.admits_raw(value)
    if isinstance(domain, IntRange):
        if isinstance(value, bool):
            value = int(value)  # True == 1: numeric equality applies
        if not isinstance(value, (int, float)):
            return False
        return domain.lo <= value <= domain.hi and float(value).is_integer()
    return domain.contains(value)


def _value_satisfies(group: _Group, value) -> bool:
    """Whether ``value`` satisfies every pooled literal of the group.

    Raises ``TypeError`` on incomparable payloads; the caller treats
    that class as outside the fast fragment.
    """
    # Every pooled equality must hold — with conflicting pins (the
    # tighten pass already failed by the time we scan) no value passes,
    # which surfaces as an empty candidate list rather than a bogus one.
    for w in group.eqs:
        if not value == w:
            return False
    for w in group.neqs:
        if value == w:
            return False
    for c, strict in group.lowers:
        if not _cmp(">" if strict else ">=", value, c):
            return False
    for c, strict in group.uppers:
        if not _cmp("<" if strict else "<=", value, c):
            return False
    return True


class _Class:
    """One union-find equivalence class of c-variables, atomized.

    ``pinned`` is the constant the whole class must equal (when some
    ``var = const`` literal exists); ``candidates`` is the *exact* list
    of values the class may take — the intersection of every member's
    declared domain with the pooled interval/disequality literals — or
    ``None`` when that set could not be computed exactly (unbounded
    domain, incomparable payloads, or over budget).  An empty candidate
    list is therefore a sound UNSAT.
    """

    __slots__ = ("members", "group", "pinned", "candidates")

    def __init__(self, members: List[CVariable]):
        self.members = members
        self.group: Optional[_Group] = None
        self.pinned = None
        self.candidates: Optional[List] = None


def _atomize(
    classes: Dict[Term, _Class], domains: DomainMap
) -> Optional[bool]:
    """Fill pinned values / candidate lists; ``False`` means UNSAT.

    Returns ``None`` on success, ``False`` when some class admits no
    value (a pointwise refutation over the declared domains).
    """
    domain_of = domains.domain_of
    for info in classes.values():
        group = info.group
        if group is not None:
            if group.tighten_and() is None:
                return False
            if group.eqs:
                info.pinned = group.eqs[0]
                for var in info.members:
                    if not _domain_admits(domain_of(var), info.pinned):
                        return False
                info.candidates = [info.pinned]
                continue
        # Unpinned: intersect the members' domains with the literals.
        members = info.members
        base = domain_of(members[0])
        base_size = base.size()
        doms = None
        if len(members) > 1:
            doms = [base]
            unbounded = base_size is None
            for var in members[1:]:
                d = domain_of(var)
                size = d.size()
                if size is None:
                    unbounded = True
                elif base_size is None or size < base_size:
                    base, base_size = d, size
                doms.append(d)
            if unbounded and base_size is None:
                continue  # candidates stay None: outside the fast fragment
        elif base_size is None:
            continue  # candidates stay None: outside the fast fragment
        if base_size > _CANDIDATE_BUDGET:
            continue
        if group is None and doms is None and isinstance(base, FiniteDomain):
            # No literals on a lone variable: candidates are exactly the
            # domain, precomputed on the domain object (non-empty by
            # FiniteDomain's constructor, so never an UNSAT signal).
            info.candidates = base.sorted_raw()
            continue
        candidates = []
        try:
            for value in base.raw_values():
                if group is not None and not _value_satisfies(group, value):
                    continue
                if doms is not None:
                    admitted = True
                    for d in doms:
                        if d is not base and not _domain_admits(d, value):
                            admitted = False
                            break
                    if not admitted:
                        continue
                candidates.append(value)
        except TypeError:
            continue  # incomparable payloads: no conclusion for this class
        if not candidates:
            return False  # exact intersection is empty: UNSAT
        info.candidates = candidates
    return None


def _linear_profile(
    atom: LinearAtom, uf: _UnionFind, classes: Dict[Term, _Class]
) -> Optional[Tuple[float, List[Tuple[Term, float, List[int]]]]]:
    """Resolve a linear atom against the classes.

    Returns ``(pinned_part, free)`` where ``free`` lists
    ``(rep, coeff, int_candidates)`` per unpinned class (coefficients
    merged across members of one class), or ``None`` when any unpinned
    class lacks an all-integer candidate list — outside the fragment.
    """
    pinned_part = 0.0
    merged: Dict[Term, float] = {}
    for var, coeff in atom.coeffs:
        rep = uf.find(var)
        info = classes[rep]
        if info.pinned is not None:
            value = info.pinned
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                return None
            pinned_part += coeff * value
        else:
            merged[rep] = merged.get(rep, 0.0) + coeff
    free: List[Tuple[Term, float, List[int]]] = []
    for rep, coeff in merged.items():
        if coeff == 0:
            continue
        cands = classes[rep].candidates
        if cands is None or not all(
            isinstance(v, int) and not isinstance(v, bool) for v in cands
        ):
            return None
        free.append((rep, coeff, sorted(cands)))
    return pinned_part, free


def _linear_unsat(atom: LinearAtom, pinned_part: float,
                  free: List[Tuple[Term, float, List[int]]]) -> bool:
    """Bound check: is the atom unachievable over the candidate ranges?"""
    lo = hi = pinned_part
    for _, coeff, cands in free:
        lo += coeff * (cands[0] if coeff > 0 else cands[-1])
        hi += coeff * (cands[-1] if coeff > 0 else cands[0])
    bound = atom.bound
    if atom.op == "=":
        return bound < lo or bound > hi
    if atom.op == "!=":
        return lo == hi == bound
    if atom.op == "<=":
        return lo > bound
    if atom.op == "<":
        return lo >= bound
    if atom.op == ">=":
        return hi < bound
    return hi <= bound  # ">"


def _contiguous(cands: List[int]) -> bool:
    return cands[-1] - cands[0] + 1 == len(cands)


def _solve_linear(atom: LinearAtom, pinned_part: float,
                  free: List[Tuple[Term, float, List[int]]],
                  choices: Dict[Term, object]) -> bool:
    """Greedy witness for one linear atom over unit-coefficient classes.

    Only attempts the fragment where every free class has coefficient 1
    and a contiguous integer candidate range (the §4 failure encodings:
    bool link variables under ``Σ x̄ᵢ op k``).  Returns False on any
    shape it does not handle — the caller falls back; a wrong choice is
    caught by the final ``evaluate`` verification either way.
    """
    if any(coeff != 1 or not _contiguous(cands) for _, coeff, cands in free):
        return False
    if any(rep in choices for rep, _, _ in free):
        return False  # already fixed by an earlier atom: just verify later
    lo_sum = pinned_part + sum(cands[0] for _, _, cands in free)
    hi_sum = pinned_part + sum(cands[-1] for _, _, cands in free)
    op, bound = atom.op, atom.bound
    if op in ("=", "!=") and float(bound).is_integer():
        bound = int(bound)
    if op == "=":
        if not isinstance(bound, int) or not (lo_sum <= bound <= hi_sum):
            return False
        surplus = bound - lo_sum
        for rep, _, cands in free:
            step = min(surplus, cands[-1] - cands[0])
            choices[rep] = cands[0] + step
            surplus -= step
        return surplus == 0
    if op in ("<=", "<"):
        if not _cmp(op, lo_sum, bound):
            return False
        for rep, _, cands in free:
            choices[rep] = cands[0]
        return True
    if op in (">=", ">"):
        if not _cmp(op, hi_sum, bound):
            return False
        for rep, _, cands in free:
            choices[rep] = cands[-1]
        return True
    # "!=": all-low unless that lands exactly on the bound.
    total = lo_sum
    picks = {rep: cands[0] for rep, _, cands in free}
    if total == bound:
        for rep, _, cands in free:
            if cands[-1] > cands[0]:
                picks[rep] = cands[0] + 1
                total += 1
                break
        else:
            return False
    choices.update(picks)
    return True


def _solve_conjunction(
    children: Sequence[Condition], domains: DomainMap
):
    """Decide a flat conjunction of atoms against the domain map.

    Returns ``_UNSAT``, a witness dict ``{CVariable: Constant}``, or
    ``None`` (no conclusion).  Every UNSAT return is a pointwise
    refutation; the witness is verified by the caller.
    """
    uf = _UnionFind()
    seen_vars: Dict[CVariable, None] = {}
    var_const: List[Tuple[CVariable, str, object]] = []
    neq_pairs: List[Tuple[Term, Term]] = []
    order_edges: List[Tuple[Term, Term, bool]] = []
    linear: List[LinearAtom] = []

    queue = list(children)
    i = 0
    while i < len(queue):
        child = queue[i]
        i += 1
        if isinstance(child, FalseCond):
            return _UNSAT
        if isinstance(child, TrueCond):
            continue
        if isinstance(child, And):
            queue.extend(child.children)
            continue
        if isinstance(child, Or):
            return None  # caller case-splits; reaching here is a miss
        if isinstance(child, LinearAtom):
            linear.append(child)
            for var, _ in child.coeffs:
                seen_vars.setdefault(var, None)
            continue
        if not isinstance(child, Comparison):
            return None
        lhs, op, rhs = child.lhs, child.op, child.rhs
        if isinstance(lhs, Constant) and isinstance(rhs, CVariable):
            lhs, op, rhs = rhs, _FLIPPED_OP[op], lhs
        if isinstance(lhs, CVariable) and isinstance(rhs, Constant):
            var_const.append((lhs, op, rhs.value))
            seen_vars.setdefault(lhs, None)
        elif isinstance(lhs, CVariable) and isinstance(rhs, CVariable):
            seen_vars.setdefault(lhs, None)
            seen_vars.setdefault(rhs, None)
            if op == "=":
                uf.union(lhs, rhs)
            elif op == "!=":
                neq_pairs.append((lhs, rhs))
            elif op == "<":
                order_edges.append((lhs, rhs, True))
            elif op == "<=":
                order_edges.append((lhs, rhs, False))
            elif op == ">":
                order_edges.append((rhs, lhs, True))
            elif op == ">=":
                order_edges.append((rhs, lhs, False))
        else:
            return None  # program variables / exotic terms: not ours

    # Build the equivalence classes and pool their constant literals.
    classes: Dict[Term, _Class] = {}
    for var in seen_vars:
        rep = uf.find(var)
        info = classes.get(rep)
        if info is None:
            classes[rep] = info = _Class([])
        info.members.append(var)
    for var, op, value in var_const:
        rep = uf.find(var)
        info = classes[rep]
        if info.group is None:
            anchor = rep if isinstance(rep, CVariable) else CVariable("_class")
            info.group = _Group(anchor)
        info.group.add(op, value)

    if _atomize(classes, domains) is False:
        return _UNSAT

    # Var-var disequality and order facts between classes.
    loose_edges = False  # some edge touches an unpinned class
    for a, b in neq_pairs:
        ra, rb = uf.find(a), uf.find(b)
        if ra == rb:
            return _UNSAT
        va, vb = classes[ra].pinned, classes[rb].pinned
        if va is not None and vb is not None:
            if va == vb:
                return _UNSAT
        else:
            loose_edges = True
    for lo, hi, strict in order_edges:
        rlo, rhi = uf.find(lo), uf.find(hi)
        if rlo == rhi and strict:
            return _UNSAT
        vlo, vhi = classes[rlo].pinned, classes[rhi].pinned
        if vlo is not None and vhi is not None:
            try:
                if not _cmp("<" if strict else "<=", vlo, vhi):
                    return _UNSAT
            except TypeError:
                loose_edges = True
        else:
            loose_edges = True
    if _strict_cycle(order_edges, uf):
        return _UNSAT

    # Linear atoms: achievable-sum bound checks (sound UNSAT) ...
    profiles = []
    for atom in linear:
        profile = _linear_profile(atom, uf, classes)
        if profile is not None:
            pinned_part, free = profile
            if _linear_unsat(atom, pinned_part, free):
                return _UNSAT
        profiles.append(profile)

    # ... then witness construction (verified by the caller).
    if loose_edges:
        return None
    choices: Dict[Term, object] = {}
    for atom, profile in zip(linear, profiles):
        if profile is None:
            continue  # unverifiable shape: let evaluate() arbitrate
        pinned_part, free = profile
        _solve_linear(atom, pinned_part, free, choices)
    witness: Dict[CVariable, Constant] = {}
    for rep, info in classes.items():
        if info.pinned is not None:
            value = info.pinned
        elif rep in choices:
            value = choices[rep]
        elif info.candidates:
            value = info.candidates[0]
        else:
            return None  # no exact candidate set: cannot construct
        for var in info.members:
            witness[var] = Constant(value)
    return witness


def _candidate_classes(
    plain: Sequence[Condition], domains: DomainMap
) -> Optional[List[Tuple[List[CVariable], List]]]:
    """Atomize plain conjuncts into (class members, exact candidates).

    Each equivalence class (union-find over ``var = var`` chains) gets
    the *exact* list of values its members may take — the intersection
    of every member's declared finite domain with the pooled
    ``var op const`` literals.  Three narrowing sources combine:

    * ``var = const`` literals pin a class to one value;
    * the domain/literal intersection itself may be a singleton;
    * linear atoms achievable only at an extreme of their candidate
      ranges (``Σ x̄ᵢ = k`` where the already-pinned part leaves zero
      slack — the §4 shape where a pinned failure plus ``Σ = 1`` forces
      every other link variable to 0), propagated to a fixpoint.

    Soundness invariant: any satisfying assignment (over the declared
    domains) gives every class a value from its candidate list, and one
    value per class (members are equal).  Returns ``None`` when some
    class's exact candidate set cannot be computed (unbounded domain,
    over budget, or a shape outside the fragment).
    """
    uf = _UnionFind()
    seen_vars: Dict[CVariable, None] = {}
    var_const: List[Tuple[CVariable, str, object]] = []
    linear: List[LinearAtom] = []
    for child in plain:
        if isinstance(child, TrueCond):
            continue
        if isinstance(child, LinearAtom):
            linear.append(child)
            for var, _ in child.coeffs:
                seen_vars.setdefault(var, None)
            continue
        if not isinstance(child, Comparison):
            return None
        lhs, op, rhs = child.lhs, child.op, child.rhs
        if isinstance(lhs, Constant) and isinstance(rhs, CVariable):
            lhs, op, rhs = rhs, _FLIPPED_OP[op], lhs
        if isinstance(lhs, CVariable) and isinstance(rhs, Constant):
            seen_vars.setdefault(lhs, None)
            var_const.append((lhs, op, rhs.value))
        elif isinstance(lhs, CVariable) and isinstance(rhs, CVariable):
            seen_vars.setdefault(lhs, None)
            seen_vars.setdefault(rhs, None)
            if op == "=":
                uf.union(lhs, rhs)
            # != / < / ... never force values; evaluate re-checks them.
        else:
            return None
    # With no var=var chains every variable is its own class — skip the
    # union-find lookups entirely (the dominant Table-4 shape).
    find = uf.find if uf._parent else _identity
    classes: Dict[Term, _Class] = {}
    for var in seen_vars:
        rep = find(var)
        info = classes.get(rep)
        if info is None:
            classes[rep] = info = _Class([])
        info.members.append(var)
    for var, op, value in var_const:
        info = classes[find(var)]
        if info.group is None:
            info.group = _Group(var)
        info.group.add(op, value)

    # Per-class exact candidate list (pinned classes get a singleton).
    # Plain loops throughout: this runs per insert on the dedup hot
    # path, where generator-expression frames dominate at these sizes.
    domain_of = domains.domain_of
    numeric_ok: Dict[Term, bool] = {}
    for rep, info in classes.items():
        group = info.group
        if group is not None and group.eqs and (
            # Lone equality literal: trivially consistent, no need to run
            # the full tightening pass (the dominant Table-4 shape).
            (len(group.eqs) == 1
             and not group.neqs and not group.lowers and not group.uppers)
            or group.tighten_and() is not None
        ):
            value = group.eqs[0]
            for v in info.members:
                if not _domain_admits(domain_of(v), value):
                    return None  # pin outside a domain: full path refutes
            info.candidates = [value]
            numeric_ok[rep] = isinstance(value, (int, float)) and not isinstance(
                value, bool
            )
            continue
        members = info.members
        base = domain_of(members[0])
        base_size = base.size()
        if base_size is None:
            return None
        doms = None
        if len(members) > 1:
            doms = [base]
            for v in members[1:]:
                d = domain_of(v)
                size = d.size()
                if size is None:
                    return None
                if size < base_size:
                    base, base_size = d, size
                doms.append(d)
        if base_size > _CANDIDATE_BUDGET:
            return None
        if group is None and doms is None and isinstance(base, FiniteDomain):
            # A lone variable with no literals on it: the candidate list
            # is the whole (sorted-when-numeric) domain, precomputed on
            # the domain object — no per-insert rescan.
            info.candidates = base.sorted_raw()
            numeric_ok[rep] = base.numeric
            continue
        candidates = []
        numeric = True
        try:
            for v in base.raw_values():
                if group is not None and not _value_satisfies(group, v):
                    continue
                if doms is not None:
                    admitted = True
                    for d in doms:
                        if d is not base and not _domain_admits(d, v):
                            admitted = False
                            break
                    if not admitted:
                        continue
                candidates.append(v)
                if numeric and (
                    not isinstance(v, (int, float)) or isinstance(v, bool)
                ):
                    numeric = False
        except TypeError:
            return None
        if not candidates:
            return None
        if numeric and len(candidates) > 1:
            candidates.sort()
        info.candidates = candidates
        numeric_ok[rep] = numeric

    # Zero-slack propagation through linear atoms: when an atom is
    # achievable only with every multi-candidate class at one extreme of
    # its (sorted numeric) candidate range, those extremes become pinned
    # too.  Loop to a fixpoint (each pass pins at least one more class
    # or stops).  Numeric-ness per class is computed once — propagation
    # only ever shrinks a candidate list to one of its own values.
    changed = bool(linear)
    while changed:
        changed = False
        for atom in linear:
            pinned_part = 0.0
            merged: Dict[Term, float] = {}
            usable = True
            for var, coeff in atom.coeffs:
                rep = find(var)
                if not numeric_ok[rep]:
                    usable = False
                    break
                cands = classes[rep].candidates
                if len(cands) == 1:
                    pinned_part += coeff * cands[0]
                else:
                    merged[rep] = merged.get(rep, 0.0) + coeff
            if not usable or not merged:
                continue
            if any(coeff == 0 for coeff in merged.values()):
                continue
            lo = hi = pinned_part
            for rep, coeff in merged.items():
                cands = classes[rep].candidates
                lo += coeff * (cands[0] if coeff > 0 else cands[-1])
                hi += coeff * (cands[-1] if coeff > 0 else cands[0])
            op, bound = atom.op, atom.bound
            at_min = (op == "=" and bound == lo) or (op == "<=" and bound == lo)
            at_max = (op == "=" and bound == hi) or (op == ">=" and bound == hi)
            if at_min == at_max:  # neither extreme (lo < hi strictly here)
                continue
            for rep, coeff in merged.items():
                cands = classes[rep].candidates
                take_low = (coeff > 0) == at_min
                classes[rep].candidates = [cands[0] if take_low else cands[-1]]
                changed = True

    return [(info.members, info.candidates) for info in classes.values()]


#: Maximum assignments enumerated over a condition's atomized candidate
#: space before the fast path gives up (falls back to the backends).
_PRODUCT_BUDGET = 64


def _candidate_space(
    cvars: Set[CVariable],
    plain: Sequence[Condition],
    domains: DomainMap,
) -> Optional[List[Tuple[List[CVariable], List]]]:
    """The full atomized space covering ``cvars``: classes + loose vars.

    Variables in ``cvars`` not mentioned by any plain conjunct get their
    whole (finite) domain as candidates.  Returns ``None`` when the
    space is not exactly computable or its product exceeds
    ``_PRODUCT_BUDGET``.
    """
    space = _candidate_classes(plain, domains)
    if space is None:
        return None
    product = 1
    covered = set()
    for members, values in space:
        covered.update(members)
        product *= len(values)
        if product > _PRODUCT_BUDGET:
            return None
    # Budget-check the loose variables on domain *sizes* before
    # materializing any value list — an over-budget product must cost
    # nothing (at large RIB sizes whole-domain lists run to hundreds of
    # values, and giving up after building them dominated this path).
    domain_of = domains.domain_of
    loose = []
    for var in cvars:
        if var in covered:
            continue
        domain = domain_of(var)
        size = domain.size()
        if size is None or size > _CANDIDATE_BUDGET:
            return None
        product *= size
        if product > _PRODUCT_BUDGET:
            return None
        loose.append((var, domain))
    for var, domain in loose:
        space.append(([var], list(domain.raw_values())))
    return space


#: Interned Constants for candidate payloads.  Candidate lists repeat
#: massively across fast-path calls (mostly {0, 1} link-state values),
#: so wrapper construction amortizes to a dict hit.  Keyed by payload
#: type too: 1 and True pool separately even though they compare equal.
_CONST_CACHE: Dict[Tuple[type, object], Constant] = {}


def _const(value) -> Constant:
    try:
        key = (value.__class__, value)
        const = _CONST_CACHE.get(key)
    except TypeError:  # unhashable payload (nested-list tuple)
        return Constant(value)
    if const is None:
        if len(_CONST_CACHE) > 4096:
            _CONST_CACHE.clear()
        const = Constant(value)
        _CONST_CACHE[key] = const
    return const


def _assignments(space: List[Tuple[List[CVariable], List]]):
    """Yield every total assignment over the atomized candidate space."""
    consts = [[_const(v) for v in values] for _, values in space]
    for combo in itertools.product(*consts):
        assignment: Dict[CVariable, Constant] = {}
        for (members, _), const in zip(space, combo):
            for var in members:
                assignment[var] = const
        yield assignment


def _search(canon: Condition, domains: DomainMap, depth: int):
    """Recursive decision: ``_UNSAT``, a witness dict, or ``None``."""
    if isinstance(canon, TrueCond):
        return {}
    if isinstance(canon, FalseCond):
        return _UNSAT
    if isinstance(canon, (Comparison, LinearAtom)):
        return _solve_conjunction([canon], domains)
    if depth >= _DEPTH_BUDGET:
        return None
    if isinstance(canon, Or):
        if len(canon.children) > _SPLIT_BUDGET:
            return None
        all_unsat = True
        for child in canon.children:
            sub = _search(child, domains, depth + 1)
            if isinstance(sub, dict):
                return sub
            if sub is not _UNSAT:
                all_unsat = False
        return _UNSAT if all_unsat else None
    if isinstance(canon, And):
        disjunctions = [c for c in canon.children if isinstance(c, Or)]
        plain = [c for c in canon.children if not isinstance(c, Or)]
        if not disjunctions:
            return _solve_conjunction(plain, domains)
        # Atomized-space shortcut: when the plain conjuncts narrow every
        # variable of the condition to a small exact candidate space,
        # exhaustive evaluation over that space decides the whole
        # conjunction — Or children and all — regardless of how large
        # the case-split product is.  (This is the dominant q6/q8
        # shape: per-path equalities plus the §4 failure-pattern
        # disjunctions over the same variables; the equalities shrink
        # the space to a handful of assignments.)  Completeness: every
        # model assigns each class a value from its candidate list, so
        # an exhausted space with no accepting assignment is UNSAT.
        space = _candidate_space(set(canon.cvariables()), plain, domains)
        if space is not None:
            try:
                for assignment in _assignments(space):
                    if canon.evaluate(assignment):
                        return assignment
                return _UNSAT
            except (KeyError, TypeError):
                pass
        splits = 1
        for dis in disjunctions:
            splits *= len(dis.children)
        if splits > _SPLIT_BUDGET:
            return None
        all_unsat = True
        for combo in itertools.product(*[d.children for d in disjunctions]):
            arm = canonicalize(conjoin(plain + list(combo)))
            sub = _search(arm, domains, depth + 1)
            if isinstance(sub, dict):
                return sub
            if sub is not _UNSAT:
                all_unsat = False
        return _UNSAT if all_unsat else None
    return None


def fast_sat(
    condition: Condition,
    domains: DomainMap,
    assume_canonical: bool = False,
) -> Optional[bool]:
    """Semi-decide satisfiability under the declared domains.

    ``True``/``False`` are definite (see the module docstring for the
    soundness argument); ``None`` sends the caller to the complete
    backends.  Pass ``assume_canonical=True`` when the input is already
    in the canonical normal form of :mod:`repro.solver.canonical` (the
    memoized solver path) to skip re-canonicalization.
    """
    canon = condition if assume_canonical else canonicalize(condition)
    if isinstance(canon, TrueCond):
        return True
    if isinstance(canon, FalseCond):
        return False
    result = _search(canon, domains, 0)
    if result is _UNSAT:
        return False
    if not isinstance(result, dict):
        return None
    # Verify the witness on the full condition: fill variables the
    # chosen branch left free with arbitrary in-domain values, then
    # require evaluate() to accept.  A rejected or unevaluable witness
    # is a miss, never a verdict.
    assignment = dict(result)
    for var in canon.cvariables():
        if var in assignment:
            continue
        domain = domains.domain_of(var)
        if domain.is_finite:
            assignment[var] = domain.values()[0]
        else:
            assignment[var] = Constant(0)
    try:
        satisfied = canon.evaluate(assignment)
    except (KeyError, TypeError):
        return None
    return True if satisfied else None


#: Countermodel cache for :func:`fast_implies`, keyed per antecedent.
#: The c-table dedup loop re-asks the *same* antecedent against a
#: growing disjunction of stored conditions; an assignment that
#: satisfied the antecedent while falsifying the old consequent usually
#: still falsifies the new one, and re-checking a candidate countermodel
#: is a handful of ``evaluate`` calls instead of a full atomization.
#: The cache is deliberately global (not per DomainMap): every reuse is
#: re-verified from scratch — antecedent satisfaction, consequent
#: falsification, and membership in the *caller's current* domains — so
#: a witness recorded under one domain map is safely consulted under
#: another, and a stale entry can only cost a fallthrough, never a
#: wrong answer.
_WITNESS_CACHE: Dict[Condition, Dict[CVariable, Constant]] = {}
_WITNESS_LIMIT = 8192


def _check_witness(
    witness: Dict[CVariable, Constant],
    antecedent: Condition,
    consequent: Condition,
    domains: DomainMap,
) -> bool:
    """Whether ``witness`` is a valid countermodel for ``A ⊨ C`` now.

    Validity is re-established in full: the assignment must falsify the
    consequent, satisfy the antecedent, and lie inside every variable's
    *current* declared domain (the map may have been re-declared since
    the witness was recorded).  ``KeyError``/``TypeError`` — a new
    variable or an incomparable payload — simply reject the witness.
    """
    try:
        if consequent.evaluate(witness) or not antecedent.evaluate(witness):
            return False
    except (KeyError, TypeError):
        return False
    domain_of = domains.domain_of
    for var, const in witness.items():
        if not _domain_admits(domain_of(var), const.value):
            return False
    return True


def _remember_witness(
    antecedent: Condition,
    witness: Dict[CVariable, Constant],
) -> None:
    if len(_WITNESS_CACHE) >= _WITNESS_LIMIT:
        _WITNESS_CACHE.clear()
    _WITNESS_CACHE[antecedent] = witness


def fast_implies(
    antecedent: Condition,
    consequent: Condition,
    domains: DomainMap,
) -> Optional[bool]:
    """Semi-decide entailment without canonicalizing either side.

    The c-table hot path (:meth:`CTable` dedup / ``is_new``) asks
    ``new ⊨ Or(stored)`` for conditions whose plain equality conjuncts
    narrow the variables to a small exact candidate space — the §4
    per-path shape.  Entailment is then decided exhaustively: the
    implication holds iff no assignment in the antecedent's atomized
    space satisfies the antecedent but falsifies the consequent.
    Completeness of the space (every model of the antecedent lies in
    it, and it covers the consequent's variables too) makes both the
    ``True`` and the ``False`` answer definite; a ``False`` comes with
    an explicit countermodel having been evaluated.

    Returns ``None`` (no conclusion) on any other shape; the caller
    proceeds with the memoized conjoin-and-refute path unchanged.
    """
    witness = _WITNESS_CACHE.get(antecedent)
    if witness is not None and _check_witness(
        witness, antecedent, consequent, domains
    ):
        return False  # the cached countermodel still refutes A ⊨ C
    children = (
        antecedent.children if isinstance(antecedent, And) else (antecedent,)
    )
    plain: List[Condition] = []
    residue: List[Condition] = []
    for child in children:
        if isinstance(child, FalseCond):
            return True  # ⊥ entails everything
        if isinstance(child, TrueCond):
            continue
        if isinstance(child, Comparison):
            plain.append(child)
            # Space assignments satisfy the pooled var-const literals
            # and var = var chains by construction (candidates are
            # filtered through the class group; class members share one
            # constant) — only the shapes the atomizer does not consume
            # as constraints need re-evaluation per assignment.
            if (
                isinstance(child.lhs, CVariable)
                and isinstance(child.rhs, CVariable)
                and child.op != "="
            ):
                residue.append(child)
            continue
        if isinstance(child, LinearAtom):
            plain.append(child)
            residue.append(child)
            continue
        # Or / Not / nested And children narrow nothing by themselves;
        # they are re-checked per assignment below, so skipping them in
        # the atomization is sound.
        residue.append(child)
    cvars = antecedent.cvariables() | consequent.cvariables()
    space = _candidate_space(cvars, plain, domains)
    if space is None:
        return None
    try:
        singleton = True
        for _, values in space:
            if len(values) > 1:
                singleton = False
                break
        if singleton:
            # Dominant Table-4 shape: the equalities pin every class, so
            # the space is one assignment — build and test it directly
            # (no product/generator machinery on the per-insert path).
            assignment = {}
            for members, values in space:
                const = _const(values[0])
                for var in members:
                    assignment[var] = const
            for child in residue:
                if not child.evaluate(assignment):
                    return True  # antecedent unsat: entails everything
            if consequent.evaluate(assignment):
                return True
            _remember_witness(antecedent, assignment)
            return False
        for assignment in _assignments(space):
            ok = True
            for child in residue:
                if not child.evaluate(assignment):
                    ok = False
                    break
            if ok and not consequent.evaluate(assignment):
                _remember_witness(antecedent, assignment)
                return False
        return True  # no countermodel in the complete space (or A unsat)
    except (KeyError, TypeError):
        return None
