"""Branch-and-check satisfiability for compound conditions.

For conditions over unbounded domains (where exact enumeration is
unavailable) we lazily explore the DNF branches of the condition in
negation normal form, checking every partial branch against the
conjunction-level theory solver so contradictory prefixes are pruned
before they multiply.  This is a DPLL(T)-style driver specialized to the
tree-shaped formulas fauré-log produces.
"""

from __future__ import annotations

from typing import Iterator, List

from ..ctable.condition import (
    And,
    Comparison,
    Condition,
    FALSE,
    FalseCond,
    LinearAtom,
    Not,
    Or,
    TRUE,
    TrueCond,
)
from .domains import DomainMap
from .theory import SAT, UNSAT, check_conjunction

__all__ = ["to_nnf", "iter_branches", "is_satisfiable_dpll"]


def to_nnf(condition: Condition) -> Condition:
    """Push negations down to atoms (atoms negate into atoms)."""
    if isinstance(condition, Not):
        return to_nnf(condition.child.negate())
    if isinstance(condition, And):
        return And([to_nnf(c) for c in condition.children])
    if isinstance(condition, Or):
        return Or([to_nnf(c) for c in condition.children])
    return condition


def iter_branches(condition: Condition) -> Iterator[List[Condition]]:
    """Yield the DNF branches (lists of atoms) of an NNF condition."""
    if isinstance(condition, TrueCond):
        yield []
        return
    if isinstance(condition, FalseCond):
        return
    if isinstance(condition, (Comparison, LinearAtom)):
        yield [condition]
        return
    if isinstance(condition, Or):
        for child in condition.children:
            yield from iter_branches(child)
        return
    if isinstance(condition, And):

        def product(idx: int, acc: List[Condition]) -> Iterator[List[Condition]]:
            if idx == len(condition.children):
                yield list(acc)
                return
            for branch in iter_branches(condition.children[idx]):
                yield from product(idx + 1, acc + branch)

        yield from product(0, [])
        return
    raise TypeError(f"condition not in NNF: {condition!r}")


def _branch_sat(atoms: List[Condition], domains: DomainMap, ticker=None) -> bool:
    """Exact satisfiability of one conjunction of atoms.

    The theory solver decides quickly; its SAT verdict is then confirmed
    exactly by finite-domain enumeration of the branch when every
    variable involved is finite (conjunction branches are narrow, so the
    substitute-and-fold pruning of the enumerator makes this cheap).
    Branches with unbounded variables rely on the theory verdict, which
    is complete for the supported fragment.
    """
    from ..ctable.condition import conjoin
    from .enumerate import find_model

    if ticker is not None:
        ticker.tick()
    verdict = check_conjunction(atoms, domains)
    if verdict == UNSAT:
        return False
    conj = conjoin(atoms)
    cvars = conj.cvariables()
    if domains.all_finite(cvars):
        return find_model(conj, domains, ticker=ticker) is not None
    return True


def is_satisfiable_dpll(condition: Condition, domains: DomainMap, ticker=None) -> bool:
    """Satisfiability by branch exploration with theory pruning.

    Explores DNF branches of the NNF'd condition; intermediate prefixes
    are pruned by the (fast, sound-for-UNSAT) theory solver, and a branch
    is accepted only after exact confirmation by :func:`_branch_sat`.
    ``ticker`` is a cooperative cancellation token (see
    :class:`~repro.robustness.governor.WorkTicket`) ticked once per
    explored node, so the governor can stop a pathological exploration.
    """
    nnf = to_nnf(condition)

    def explore(cond: Condition, prefix: List[Condition]) -> bool:
        if ticker is not None:
            ticker.tick()
        if isinstance(cond, TrueCond):
            return _branch_sat(prefix, domains, ticker)
        if isinstance(cond, FalseCond):
            return False
        if isinstance(cond, (Comparison, LinearAtom)):
            return _branch_sat(prefix + [cond], domains, ticker)
        if isinstance(cond, Or):
            return any(explore(child, prefix) for child in cond.children)
        if isinstance(cond, And):
            return _explore_and(list(cond.children), 0, prefix)
        raise TypeError(f"condition not in NNF: {cond!r}")

    def _explore_and(children: List[Condition], idx: int, prefix: List[Condition]) -> bool:
        # Consume atomic children first: they extend the prefix cheaply
        # and prune before we branch on the compound ones.
        atoms = [c for c in children[idx:] if isinstance(c, (Comparison, LinearAtom))]
        compounds = [
            c
            for c in children[idx:]
            if not isinstance(c, (Comparison, LinearAtom, TrueCond))
        ]
        if any(isinstance(c, FalseCond) for c in children[idx:]):
            return False
        new_prefix = prefix + atoms
        if check_conjunction(new_prefix, domains) == UNSAT:
            return False
        if not compounds:
            return _branch_sat(new_prefix, domains, ticker)

        def rec(i: int, pref: List[Condition]) -> bool:
            if i == len(compounds):
                return _branch_sat(pref, domains, ticker)
            node = compounds[i]
            if isinstance(node, Or):
                return any(
                    rec_branch(child, i, pref) for child in node.children
                )
            if isinstance(node, And):
                return rec_branch(node, i, pref)
            raise TypeError(f"unexpected node {node!r}")

        def rec_branch(node: Condition, i: int, pref: List[Condition]) -> bool:
            for branch in iter_branches(node):
                if ticker is not None:
                    ticker.tick()
                candidate = pref + branch
                if check_conjunction(candidate, domains) == UNSAT:
                    continue
                if rec(i + 1, candidate):
                    return True
            return False

        return rec(0, new_prefix)

    return explore(nnf, [])
