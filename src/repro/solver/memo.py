"""Shared solver memoization keyed on canonical condition forms.

Every pipeline stage used to build its own :class:`ConditionSolver`
with a cold structural cache, so the NP-complete decision work was
re-done for every semantically repeated condition.  A :class:`MemoTable`
is a process-wide, bounded-LRU verdict cache shared by *all* solver
instances in a run:

* keys are **canonical forms** (:mod:`repro.solver.canonical`), so the
  same condition reordered, un-folded, or with redundant literals hits
  the same entry;
* keys also carry the **domain fingerprint** of the condition's
  c-variables — verdicts depend on the declared domains (``x = 2`` is
  UNSAT over {0,1} but SAT over 0..9), so solvers over different
  domain maps never share entries;
* only *definite* verdicts are stored.  ``UNKNOWN`` — a budget ran out,
  a fault was injected — is never cached (preserved from the resource
  governor's contract), so a later, better-budgeted call gets a fresh
  chance at a real answer.

Soundness: canonicalization is an equivalence over every assignment and
both solver backends are exact, so a cached verdict for the canonical
form is *the* verdict for every condition in its equivalence class.
Memoization can therefore change how much work a query does, never what
it answers (see docs/SEMANTICS.md).

The default process-wide table is obtained with :func:`shared_memo`;
``ConditionSolver(memo=None)`` (CLI: ``--no-memo``) opts a solver out.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..ctable.condition import Condition, FalseCond, TrueCond
from ..ctable.terms import CVariable
from .canonical import InternTable, canonicalize
from .domains import DomainMap

__all__ = ["MemoTable", "shared_memo", "reset_shared_memo"]


class MemoTable:
    """Bounded-LRU verdict cache over canonical conditions.

    Parameters
    ----------
    max_entries:
        Verdict-entry ceiling; least-recently-used entries are evicted.
    intern_entries:
        Ceiling of the embedded hash-consing :class:`InternTable`.
    canon_entries:
        Ceiling of the original-condition → canonical-form shortcut
        cache (avoids re-canonicalizing hot conditions).
    """

    def __init__(
        self,
        max_entries: int = 1 << 16,
        intern_entries: int = 1 << 18,
        canon_entries: int = 1 << 14,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.canon_entries = canon_entries
        self.interner = InternTable(intern_entries)
        self._entries: "OrderedDict[Tuple, bool]" = OrderedDict()
        self._canon: "OrderedDict[Condition, Condition]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: ``callback(key, value)`` hooks invoked on every :meth:`put` —
        #: the checkpoint journal persists definite verdicts as they are
        #: computed (repro.robustness.checkpoint) and the cross-worker
        #: shared verdict store appends them to its log
        #: (repro.parallel.shared_memo); both can subscribe at once.
        self.observers: List[Callable[[Tuple, bool], None]] = []
        #: Optional ``callback(key) -> Optional[bool]`` consulted on a
        #: local miss in :meth:`get`/:meth:`peek`; a definite answer is
        #: folded into the table (and so re-observed) before returning.
        #: The shared verdict store's read side plugs in here.
        self.backing: Optional[Callable[[Tuple], Optional[bool]]] = None

    def __len__(self) -> int:
        return len(self._entries)

    # -- observers ----------------------------------------------------------

    def add_observer(self, callback: Callable[[Tuple, bool], None]) -> None:
        """Subscribe ``callback(key, value)`` to every :meth:`put`."""
        if callback not in self.observers:
            self.observers.append(callback)

    def remove_observer(self, callback: Callable[[Tuple, bool], None]) -> None:
        """Unsubscribe; absent callbacks are ignored (idempotent)."""
        try:
            self.observers.remove(callback)
        except ValueError:
            pass

    @property
    def observer(self) -> Optional[Callable[[Tuple, bool], None]]:
        """Back-compat single-observer view: the first subscriber.

        Assigning replaces *all* subscribers (the historical single-slot
        semantics); new code should use :meth:`add_observer` /
        :meth:`remove_observer` so the checkpoint journal and the shared
        verdict store can coexist.
        """
        return self.observers[0] if self.observers else None

    @observer.setter
    def observer(self, callback: Optional[Callable[[Tuple, bool], None]]) -> None:
        self.observers = [] if callback is None else [callback]

    # -- canonicalization ---------------------------------------------------

    def canonical(self, condition: Condition) -> Condition:
        """The interned canonical form of ``condition`` (memoized)."""
        if isinstance(condition, (TrueCond, FalseCond)):
            return condition
        got = self._canon.get(condition)
        if got is not None:
            return got
        canon = canonicalize(condition, intern=self.interner)
        if len(self._canon) >= self.canon_entries:
            self._canon.popitem(last=False)
        self._canon[condition] = canon
        return canon

    # -- keys ---------------------------------------------------------------

    def domain_signature(
        self, domains: DomainMap, cvariables: Iterable[CVariable]
    ) -> Tuple:
        """Hashable fingerprint of the domains the verdict depends on."""
        return domains.fingerprint(cvariables)

    def sat_key(self, canon: Condition, domains: DomainMap) -> Tuple:
        return ("sat", canon, self.domain_signature(domains, canon.cvariables()))

    def implies_key(
        self, canon_a: Condition, canon_b: Condition, domains: DomainMap
    ) -> Tuple:
        cvars = canon_a.cvariables() | canon_b.cvariables()
        return ("implies", canon_a, canon_b, self.domain_signature(domains, cvars))

    # -- verdict storage ----------------------------------------------------

    def _from_backing(self, key: Tuple) -> Optional[bool]:
        """Consult the read-through backing; fold a definite hit.

        The fold goes through :meth:`put`, so observers see the verdict
        too — a store-served answer is journaled/persisted exactly like
        a locally computed one (the store's own writer deduplicates).
        """
        if self.backing is None:
            return None
        got = self.backing(key)
        if got is None:
            return None
        self.put(key, got)
        return got

    def get(self, key: Tuple) -> Optional[bool]:
        got = self._entries.get(key)
        if got is None:
            got = self._from_backing(key)
            if got is None:
                self.misses += 1
                return None
            self.hits += 1
            return got
        self._entries.move_to_end(key)
        self.hits += 1
        return got

    def peek(self, key: Tuple) -> Optional[bool]:
        """Like :meth:`get`, but a miss is *not* counted as a miss.

        The batched pruner probes the memo before deciding whether a
        condition class needs real solving; an absent entry there is
        followed by a real :meth:`get` on the same key, so counting the
        probe too would double-book every miss.
        """
        got = self._entries.get(key)
        if got is None:
            got = self._from_backing(key)
            if got is not None:
                self.hits += 1
            return got
        self._entries.move_to_end(key)
        self.hits += 1
        return got

    def put(self, key: Tuple, value: bool) -> None:
        """Record a *definite* verdict.  Callers must never pass UNKNOWN."""
        if not isinstance(value, bool):
            raise TypeError(f"memo stores definite boolean verdicts, got {value!r}")
        self._entries[key] = value
        self._entries.move_to_end(key)
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
        for callback in self.observers:
            callback(key, value)

    # -- bookkeeping --------------------------------------------------------

    def clear(self) -> None:
        session = getattr(self, "_store_session", None)
        if session is not None:
            self._store_session = None
            session.close()
        self.observers = []
        self.backing = None
        self._entries.clear()
        self._canon.clear()
        self.interner.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.interner.hits = 0
        self.interner.misses = 0
        self.interner.evictions = 0

    def counters(self) -> Dict[str, int]:
        """A flat snapshot for stats surfaces (explain, CLI, benchmarks)."""
        return {
            "memo_entries": len(self._entries),
            "memo_hits": self.hits,
            "memo_misses": self.misses,
            "memo_evictions": self.evictions,
            "interned": len(self.interner),
            "intern_hits": self.interner.hits,
        }


#: The process-wide table every solver shares by default.
_SHARED: Optional[MemoTable] = None


def shared_memo() -> MemoTable:
    """The process-wide memo table (created on first use)."""
    global _SHARED
    if _SHARED is None:
        _SHARED = MemoTable()
    return _SHARED


def reset_shared_memo() -> MemoTable:
    """Clear and return the process-wide table (test isolation hook)."""
    table = shared_memo()
    table.clear()
    return table
