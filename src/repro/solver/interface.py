"""The solver façade: the drop-in replacement for the paper's Z3 calls.

:class:`ConditionSolver` exposes exactly the decision services fauré
needs — satisfiability (step 3 of the evaluation pipeline prunes tuples
with unsatisfiable conditions), implication (condition subsumption during
fixpoint dedup and containment checking), equivalence, model enumeration
(the possible-worlds oracle), and simplification.

Routing: conditions whose c-variables all carry finite domains of
tractable product size go through exact enumeration; everything else
through the DPLL(T) branch-and-check driver.  Verdicts are cached per
condition, and wall-clock spent inside the solver is accounted in
:class:`SolverStats` so the benchmark harness can report the paper's
"sql time vs Z3 time" split.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..ctable.condition import (
    And,
    Condition,
    FALSE,
    FalseCond,
    TRUE,
    TrueCond,
    conjoin,
    disjoin,
)
from ..ctable.terms import Constant, CVariable
from .domains import DomainMap
from .dpll import is_satisfiable_dpll
from .enumerate import Assignment, count_models, find_model, iter_models

__all__ = ["ConditionSolver", "SolverStats"]


@dataclass
class SolverStats:
    """Call and time accounting for solver usage."""

    sat_calls: int = 0
    implication_calls: int = 0
    cache_hits: int = 0
    enumeration_used: int = 0
    dpll_used: int = 0
    time_seconds: float = 0.0

    def reset(self) -> None:
        self.sat_calls = 0
        self.implication_calls = 0
        self.cache_hits = 0
        self.enumeration_used = 0
        self.dpll_used = 0
        self.time_seconds = 0.0


class ConditionSolver:
    """Decision procedure over the fauré condition language.

    Parameters
    ----------
    domains:
        Domain declarations for the c-variables in play.
    enumeration_limit:
        Maximum product of domain sizes for which exact enumeration is
        attempted; larger (or unbounded) instances use DPLL(T).
    """

    def __init__(self, domains: Optional[DomainMap] = None, enumeration_limit: int = 1 << 20):
        self.domains = domains if domains is not None else DomainMap()
        self.enumeration_limit = enumeration_limit
        self.stats = SolverStats()
        self._sat_cache: Dict[Condition, bool] = {}

    # -- core decisions ----------------------------------------------------

    def is_satisfiable(self, condition: Condition) -> bool:
        """True when some assignment of the c-variables satisfies it."""
        self.stats.sat_calls += 1
        if isinstance(condition, TrueCond):
            return True
        if isinstance(condition, FalseCond):
            return False
        cached = self._sat_cache.get(condition)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        start = time.perf_counter()
        try:
            result = self._decide_sat(condition)
        finally:
            self.stats.time_seconds += time.perf_counter() - start
        self._sat_cache[condition] = result
        return result

    def _decide_sat(self, condition: Condition) -> bool:
        cvars = condition.cvariables()
        size = self.domains.enumeration_size(cvars)
        if size is not None and size <= self.enumeration_limit:
            self.stats.enumeration_used += 1
            return find_model(condition, self.domains) is not None
        self.stats.dpll_used += 1
        return is_satisfiable_dpll(condition, self.domains)

    def is_valid(self, condition: Condition) -> bool:
        """True when every assignment satisfies the condition."""
        return not self.is_satisfiable(condition.negate())

    def implies(self, antecedent: Condition, consequent: Condition) -> bool:
        """Entailment: every model of ``antecedent`` satisfies ``consequent``."""
        self.stats.implication_calls += 1
        if isinstance(consequent, TrueCond) or isinstance(antecedent, FalseCond):
            return True
        if antecedent == consequent:
            return True
        return not self.is_satisfiable(conjoin([antecedent, consequent.negate()]))

    def equivalent(self, a: Condition, b: Condition) -> bool:
        """Mutual entailment."""
        return self.implies(a, b) and self.implies(b, a)

    # -- model services ------------------------------------------------------

    def models(
        self,
        condition: Condition,
        variables: Optional[List[CVariable]] = None,
    ) -> Iterator[Assignment]:
        """Enumerate satisfying assignments (finite domains required)."""
        return iter_models(condition, self.domains, variables)

    def model(self, condition: Condition) -> Optional[Assignment]:
        """One satisfying assignment, or ``None``."""
        if not condition.cvariables():
            # Variable-free: truth is fixed.
            return {} if self.is_satisfiable(condition) else None
        cvars = condition.cvariables()
        if self.domains.all_finite(cvars):
            return find_model(condition, self.domains)
        if self.is_satisfiable(condition):
            raise ValueError("model extraction requires finite domains")
        return None

    def model_count(self, condition: Condition) -> int:
        """Exact model count over the condition's c-variables."""
        return count_models(condition, self.domains)

    # -- simplification --------------------------------------------------------

    def prune(self, condition: Condition) -> Condition:
        """Collapse to FALSE when unsatisfiable, TRUE when valid."""
        if not self.is_satisfiable(condition):
            return FALSE
        if self.is_valid(condition):
            return TRUE
        return condition

    def simplify(self, condition: Condition) -> Condition:
        """Cheap semantic minimization.

        Collapses unsatisfiable/valid conditions, drops redundant
        conjuncts (conjuncts implied by the remaining ones) and dead
        disjuncts (unsatisfiable arms).  Result is equivalent to the
        input under the solver's domain map.
        """
        pruned = self.prune(condition)
        if isinstance(pruned, (TrueCond, FalseCond)):
            return pruned
        if isinstance(pruned, And):
            children = list(pruned.children)
            kept: List[Condition] = []
            for i, child in enumerate(children):
                rest = kept + children[i + 1:]
                if rest and self.implies(conjoin(rest), child):
                    continue
                kept.append(child)
            return conjoin(kept)
        if hasattr(pruned, "children") and pruned.__class__.__name__ == "Or":
            kept = [c for c in pruned.children if self.is_satisfiable(c)]
            return disjoin(kept)
        return pruned

    # -- bookkeeping -------------------------------------------------------------

    def clear_cache(self) -> None:
        self._sat_cache.clear()

    def with_domains(self, domains: DomainMap) -> "ConditionSolver":
        """A sibling solver over different domain declarations."""
        return ConditionSolver(domains, self.enumeration_limit)
