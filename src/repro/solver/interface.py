"""The solver façade: the drop-in replacement for the paper's Z3 calls.

:class:`ConditionSolver` exposes exactly the decision services fauré
needs — satisfiability (step 3 of the evaluation pipeline prunes tuples
with unsatisfiable conditions), implication (condition subsumption during
fixpoint dedup and containment checking), equivalence, model enumeration
(the possible-worlds oracle), and simplification.

Routing — the decision ladder: the interval/atom semi-decision fast
path (:func:`repro.solver.atoms.fast_sat`) answers definite SAT/UNSAT
on the common-case conditions without search; on a miss, conditions
whose c-variables all carry finite domains of tractable product size go
through exact enumeration; everything else through the DPLL(T)
branch-and-check driver.  Verdicts are cached per condition, and
wall-clock spent inside the solver is accounted in :class:`SolverStats`
so the benchmark harness can report the paper's "sql time vs Z3 time"
split.

Resource governance: when a
:class:`~repro.robustness.governor.Governor` is attached, every
decision flows through it — call budgets, deadlines, condition-size
ceilings, and injected faults all surface as
:class:`~repro.robustness.errors.BudgetExceeded` (or siblings) inside a
call.  The three-valued entry points (:meth:`sat_verdict`,
:meth:`implies_verdict`, :meth:`valid_verdict`) convert those to
``UNKNOWN`` in ``degrade`` mode; the boolean legacy entry points
(:meth:`is_satisfiable`, :meth:`implies`, ...) demand a definite answer
and raise when none is available.  Escalation order inside one call:
exact enumeration (half the step budget) → DPLL(T) (the remainder) →
``UNKNOWN``.  Without a governor, behavior is byte-identical to the
ungoverned solver.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..ctable.condition import (
    And,
    Condition,
    FALSE,
    FalseCond,
    TRUE,
    TrueCond,
    conjoin,
    disjoin,
)
from ..ctable.terms import Constant, CVariable
from ..clock import phase_clock
from ..robustness.errors import BudgetExceeded, ConditionTooLarge, SolverFailure
from ..robustness.governor import Governor
from ..robustness.verdict import Trivalent, Verdict
from .atoms import fast_implies, fast_sat
from .domains import DomainMap
from .dpll import is_satisfiable_dpll
from .enumerate import Assignment, count_models, find_model, iter_models
from .memo import MemoTable, shared_memo

__all__ = ["ConditionSolver", "SolverStats", "SHARED_MEMO"]

#: Sentinel: "use the process-wide shared memo table" (the default).
SHARED_MEMO = object()

#: Failure classes the governor can signal from inside a decision call.
_GOVERNED_FAILURES = (BudgetExceeded, SolverFailure, ConditionTooLarge)


@dataclass
class SolverStats:
    """Call and time accounting for solver usage."""

    sat_calls: int = 0
    implication_calls: int = 0
    cache_hits: int = 0
    enumeration_used: int = 0
    dpll_used: int = 0
    time_seconds: float = 0.0
    unknown_verdicts: int = 0
    budget_hits: int = 0
    fallbacks: int = 0
    #: Shared-memo accounting (zero when memoization is disabled):
    #: verdicts served from the process-wide table, verdicts this solver
    #: had to compute and store, and decisions the canonicalizer settled
    #: outright (condition collapsed to TRUE/FALSE before any backend).
    memo_hits: int = 0
    memo_misses: int = 0
    canonical_collapses: int = 0
    #: Interval/atom fast-path accounting: decisions the semi-decision
    #: procedure settled outright vs. ones that fell through to the
    #: complete backends (enumeration/DPLL).
    fast_path_hits: int = 0
    fast_path_misses: int = 0

    def reset(self) -> None:
        self.sat_calls = 0
        self.implication_calls = 0
        self.cache_hits = 0
        self.enumeration_used = 0
        self.dpll_used = 0
        self.time_seconds = 0.0
        self.unknown_verdicts = 0
        self.budget_hits = 0
        self.fallbacks = 0
        self.memo_hits = 0
        self.memo_misses = 0
        self.canonical_collapses = 0
        self.fast_path_hits = 0
        self.fast_path_misses = 0

    @property
    def decisions(self) -> int:
        """Decision-procedure invocations that had to *compute* a verdict
        (fast-path, enumeration, or DPLL) rather than serve a cache."""
        return self.enumeration_used + self.dpll_used + self.fast_path_hits


class ConditionSolver:
    """Decision procedure over the fauré condition language.

    Parameters
    ----------
    domains:
        Domain declarations for the c-variables in play.
    enumeration_limit:
        Maximum product of domain sizes for which exact enumeration is
        attempted; larger (or unbounded) instances use DPLL(T).
    governor:
        Optional resource governor; see the module docstring.  ``None``
        (the default) disables governance entirely.
    memo:
        Shared verdict memoization keyed on canonical condition forms.
        The default (:data:`SHARED_MEMO`) attaches the process-wide
        :class:`~repro.solver.memo.MemoTable`, so every solver in a
        pipeline run shares one warm cache; pass an explicit table to
        scope sharing, or ``None`` (CLI: ``--no-memo``) to disable
        canonicalization and cross-solver sharing entirely.
    fast_path:
        Enable the interval/atom semi-decision fast path
        (:func:`repro.solver.atoms.fast_sat`) as the first tier of the
        decision ladder.  ``False`` (CLI: ``--no-fast-path``) routes
        every decision straight to enumeration/DPLL; verdicts are
        byte-identical either way — the fast path only answers when its
        answer is provably the one the complete backends would give.
    """

    def __init__(
        self,
        domains: Optional[DomainMap] = None,
        enumeration_limit: int = 1 << 20,
        governor: Optional[Governor] = None,
        memo=SHARED_MEMO,
        fast_path: bool = True,
    ):
        self.domains = domains if domains is not None else DomainMap()
        self.enumeration_limit = enumeration_limit
        self.governor = governor
        self.memo: Optional[MemoTable] = shared_memo() if memo is SHARED_MEMO else memo
        self.fast_path = fast_path
        self.stats = SolverStats()
        self._sat_cache: Dict[Condition, bool] = {}
        self._implies_cache: Dict[Tuple[Condition, Condition], Trivalent] = {}

    def canonical(self, condition: Condition) -> Condition:
        """The interned canonical form (the input when memoization is off)."""
        if self.memo is None:
            return condition
        return self.memo.canonical(condition)

    # -- core decisions ----------------------------------------------------

    def sat_verdict(self, condition: Condition) -> Verdict:
        """Three-valued satisfiability.

        ``UNKNOWN`` is returned (never cached) when the governor's
        budget runs out in ``degrade`` mode; in ``fail`` mode (or from
        the boolean entry points) the failure propagates instead.
        """
        self.stats.sat_calls += 1
        if isinstance(condition, TrueCond):
            return Verdict.SAT
        if isinstance(condition, FalseCond):
            return Verdict.UNSAT
        cached = self._sat_cache.get(condition)
        if cached is not None:
            self.stats.cache_hits += 1
            return Verdict.from_bool(cached)
        memo = self.memo
        memo_key = None
        start = phase_clock()
        try:
            if memo is not None:
                # The governor's size ceiling applies *before* interning:
                # an oversized condition is refused without paying for
                # canonicalization or polluting the intern table.
                if self.governor is not None:
                    self.governor.admit(condition)
                canon = memo.canonical(condition)
                if isinstance(canon, (TrueCond, FalseCond)):
                    self.stats.canonical_collapses += 1
                    result = isinstance(canon, TrueCond)
                else:
                    memo_key = memo.sat_key(canon, self.domains)
                    hit = memo.get(memo_key)
                    if hit is not None:
                        self.stats.memo_hits += 1
                        memo_key = None  # already stored
                        result = hit
                    else:
                        self.stats.memo_misses += 1
                        result = self._decide_sat(canon)
            else:
                result = self._decide_sat(condition)
        except _GOVERNED_FAILURES as exc:
            if isinstance(exc, BudgetExceeded):
                self.stats.budget_hits += 1
            if self.governor is None or not self.governor.degrade:
                raise
            self.stats.unknown_verdicts += 1
            self.governor.events.unknown_verdicts += 1
            # UNKNOWN is never cached — neither here nor in the memo.
            return Verdict.UNKNOWN
        finally:
            # try/finally so wall-clock is accounted even when a solver
            # routine raises (budget exhaustion, injected faults, ...).
            self.stats.time_seconds += phase_clock() - start
        if memo_key is not None:
            memo.put(memo_key, result)
        self._sat_cache[condition] = result
        return Verdict.from_bool(result)

    def is_satisfiable(self, condition: Condition) -> bool:
        """True when some assignment of the c-variables satisfies it.

        Boolean façade over :meth:`sat_verdict`; demands a definite
        answer, so budget exhaustion raises instead of degrading.
        """
        return self.sat_verdict(condition).as_bool()

    def sat_verdict_cached(self, condition: Condition) -> Optional[Verdict]:
        """The cheap prefix of :meth:`sat_verdict`: no backend work.

        Answers from trivial structure, the per-solver cache, canonical
        collapse, or a memo *peek* — and returns ``None`` when only a
        real decision procedure could answer.  Used by the batched
        pruner to split condition classes into resolved and residual.

        Accounting: a resolved probe counts exactly what
        :meth:`sat_verdict` would have counted on the same hit path; an
        unresolved probe counts nothing at all (the later real
        :meth:`sat_verdict` call does its own full accounting).
        """
        if isinstance(condition, TrueCond):
            self.stats.sat_calls += 1
            return Verdict.SAT
        if isinstance(condition, FalseCond):
            self.stats.sat_calls += 1
            return Verdict.UNSAT
        cached = self._sat_cache.get(condition)
        if cached is not None:
            self.stats.sat_calls += 1
            self.stats.cache_hits += 1
            return Verdict.from_bool(cached)
        memo = self.memo
        if memo is None:
            return None
        # Honor the size ceiling *before* interning, as sat_verdict does
        # — but without counting a rejection event: the caller routes
        # oversized conditions to the real (per-tuple) path, which
        # performs the governed rejection itself.
        if self.governor is not None:
            gov = self.governor
            if gov.max_condition_atoms is not None:
                if sum(1 for _ in condition.atoms()) > gov.max_condition_atoms:
                    return None
        canon = memo.canonical(condition)
        if isinstance(canon, (TrueCond, FalseCond)):
            self.stats.sat_calls += 1
            self.stats.canonical_collapses += 1
            result = isinstance(canon, TrueCond)
            self._sat_cache[condition] = result
            return Verdict.from_bool(result)
        hit = memo.peek(memo.sat_key(canon, self.domains))
        if hit is not None:
            self.stats.sat_calls += 1
            self.stats.memo_hits += 1
            self._sat_cache[condition] = hit
            return Verdict.from_bool(hit)
        return None

    def _decide_sat(self, condition: Condition) -> bool:
        """The decision ladder, with governed escalation.

        Tier 0 — the interval/atom semi-decision fast path: equality
        chains, pooled intervals, and unit-coefficient linear atoms
        settle the common case without search (definite verdicts only;
        a miss costs one linear scan).  It runs *after*
        ``begin_solver_call`` so call budgets and injected-fault
        schedules are identical with the fast path on or off.
        Tier 1 — exact enumeration when every domain is finite and the
        product is tractable, under half the per-call step budget.
        Tier 2 — on a tier-1 step-budget exhaustion, *fall over* to
        the DPLL(T) driver with the remaining budget (its theory-guided
        pruning often decides instances enumeration cannot).  A failure
        in the final stage propagates to :meth:`sat_verdict`.
        """
        gov = self.governor
        ticket = gov.begin_solver_call(condition) if gov is not None else None
        if self.fast_path:
            # The memoized path hands us the canonical form already.
            verdict = fast_sat(
                condition, self.domains, assume_canonical=self.memo is not None
            )
            if verdict is not None:
                self.stats.fast_path_hits += 1
                return verdict
            self.stats.fast_path_misses += 1
        cvars = condition.cvariables()
        size = self.domains.enumeration_size(cvars)
        if size is not None and size <= self.enumeration_limit:
            self.stats.enumeration_used += 1
            if ticket is None:
                return find_model(condition, self.domains) is not None
            try:
                sub = ticket.sub(0.5)
                return find_model(condition, self.domains, ticker=sub) is not None
            except BudgetExceeded as exc:
                if exc.resource != "steps":
                    raise  # deadline/injected: no point retrying in-call
                self.stats.fallbacks += 1
                gov.events.fallbacks += 1
                self.stats.dpll_used += 1
                return is_satisfiable_dpll(
                    condition, self.domains, ticker=ticket.sub(1.0)
                )
        self.stats.dpll_used += 1
        return is_satisfiable_dpll(condition, self.domains, ticker=ticket)

    def valid_verdict(self, condition: Condition) -> Trivalent:
        """Three-valued validity (truth in every assignment)."""
        verdict = self.sat_verdict(condition.negate())
        if verdict is Verdict.UNSAT:
            return Trivalent.TRUE
        if verdict is Verdict.SAT:
            return Trivalent.FALSE
        return Trivalent.UNKNOWN

    def is_valid(self, condition: Condition) -> bool:
        """True when every assignment satisfies the condition."""
        return self.valid_verdict(condition).as_bool()

    def implies_verdict(self, antecedent: Condition, consequent: Condition) -> Trivalent:
        """Three-valued entailment (memoized on the canonical pair)."""
        self.stats.implication_calls += 1
        if isinstance(consequent, TrueCond) or isinstance(antecedent, FalseCond):
            return Trivalent.TRUE
        if antecedent == consequent:
            return Trivalent.TRUE
        # Raw-pair cache (the implication analogue of ``_sat_cache``):
        # the fixpoint dedup loop re-asks identical pairs every round a
        # tuple is re-derived, so definite answers are replayed without
        # touching the fast path, memo, or backends.
        raw_pair = (antecedent, consequent)
        cached_pair = self._implies_cache.get(raw_pair)
        if cached_pair is not None:
            self.stats.cache_hits += 1
            return cached_pair
        # Tier 0 — the fast path on the *raw* pair: a forced antecedent
        # assignment decides entailment with two evaluations, skipping
        # canonicalization of both sides and of the conjoined refutation
        # condition (the dominant cost of the c-table dedup hot path).
        if self.fast_path:
            start = phase_clock()
            fast = fast_implies(antecedent, consequent, self.domains)
            self.stats.time_seconds += phase_clock() - start
            if fast is not None:
                self.stats.fast_path_hits += 1
                result = Trivalent.TRUE if fast else Trivalent.FALSE
                self._implies_cache[raw_pair] = result
                return result
            self.stats.fast_path_misses += 1
        memo = self.memo
        memo_key = None
        if memo is not None:
            try:
                if self.governor is not None:
                    self.governor.admit(antecedent)
                    self.governor.admit(consequent)
            except ConditionTooLarge:
                if not self.governor.degrade:
                    raise
                self.stats.unknown_verdicts += 1
                self.governor.events.unknown_verdicts += 1
                return Trivalent.UNKNOWN
            canon_a = memo.canonical(antecedent)
            canon_b = memo.canonical(consequent)
            if canon_a is canon_b or canon_a == canon_b:
                self._implies_cache[raw_pair] = Trivalent.TRUE
                return Trivalent.TRUE
            if isinstance(canon_b, TrueCond) or isinstance(canon_a, FalseCond):
                self._implies_cache[raw_pair] = Trivalent.TRUE
                return Trivalent.TRUE
            memo_key = memo.implies_key(canon_a, canon_b, self.domains)
            hit = memo.get(memo_key)
            if hit is not None:
                self.stats.memo_hits += 1
                result = Trivalent.TRUE if hit else Trivalent.FALSE
                self._implies_cache[raw_pair] = result
                return result
            self.stats.memo_misses += 1
            antecedent, consequent = canon_a, canon_b
        verdict = self.sat_verdict(conjoin([antecedent, consequent.negate()]))
        if verdict is Verdict.UNSAT:
            if memo_key is not None:
                memo.put(memo_key, True)
            self._implies_cache[raw_pair] = Trivalent.TRUE
            return Trivalent.TRUE
        if verdict is Verdict.SAT:
            if memo_key is not None:
                memo.put(memo_key, False)
            self._implies_cache[raw_pair] = Trivalent.FALSE
            return Trivalent.FALSE
        return Trivalent.UNKNOWN

    def implies(self, antecedent: Condition, consequent: Condition) -> bool:
        """Entailment: every model of ``antecedent`` satisfies ``consequent``."""
        return self.implies_verdict(antecedent, consequent).as_bool()

    def equivalent(self, a: Condition, b: Condition) -> bool:
        """Mutual entailment."""
        return self.implies(a, b) and self.implies(b, a)

    # -- model services ------------------------------------------------------

    def models(
        self,
        condition: Condition,
        variables: Optional[List[CVariable]] = None,
    ) -> Iterator[Assignment]:
        """Enumerate satisfying assignments (finite domains required)."""
        return iter_models(condition, self.domains, variables)

    def model(self, condition: Condition) -> Optional[Assignment]:
        """One satisfying assignment, or ``None``."""
        if not condition.cvariables():
            # Variable-free: truth is fixed.
            return {} if self.is_satisfiable(condition) else None
        cvars = condition.cvariables()
        if self.domains.all_finite(cvars):
            start = phase_clock()
            try:
                return find_model(condition, self.domains)
            finally:
                self.stats.time_seconds += phase_clock() - start
        if self.is_satisfiable(condition):
            raise ValueError("model extraction requires finite domains")
        return None

    def model_count(self, condition: Condition) -> int:
        """Exact model count over the condition's c-variables."""
        start = phase_clock()
        try:
            return count_models(condition, self.domains)
        finally:
            self.stats.time_seconds += phase_clock() - start

    # -- simplification --------------------------------------------------------

    def prune(self, condition: Condition) -> Condition:
        """Collapse to FALSE when unsatisfiable, TRUE when valid.

        Degrades soundly: an ``UNKNOWN`` verdict leaves the condition
        untouched (equivalent, merely unsimplified).
        """
        verdict = self.sat_verdict(condition)
        if verdict is Verdict.UNSAT:
            return FALSE
        if verdict is Verdict.UNKNOWN:
            return condition
        if self.valid_verdict(condition) is Trivalent.TRUE:
            return TRUE
        return condition

    def simplify(self, condition: Condition) -> Condition:
        """Cheap semantic minimization.

        Collapses unsatisfiable/valid conditions, drops redundant
        conjuncts (conjuncts implied by the remaining ones) and dead
        disjuncts (unsatisfiable arms).  Result is equivalent to the
        input under the solver's domain map.  Every rewrite requires a
        *definite* verdict, so ``UNKNOWN`` keeps the subterm.
        """
        pruned = self.prune(condition)
        if isinstance(pruned, (TrueCond, FalseCond)):
            return pruned
        if isinstance(pruned, And):
            children = list(pruned.children)
            kept: List[Condition] = []
            for i, child in enumerate(children):
                rest = kept + children[i + 1:]
                if rest and self.implies_verdict(conjoin(rest), child) is Trivalent.TRUE:
                    continue
                kept.append(child)
            return conjoin(kept)
        if hasattr(pruned, "children") and pruned.__class__.__name__ == "Or":
            kept = [c for c in pruned.children if self.sat_verdict(c) is not Verdict.UNSAT]
            return disjoin(kept)
        return pruned

    # -- bookkeeping -------------------------------------------------------------

    def clear_cache(self) -> None:
        self._sat_cache.clear()

    def with_domains(self, domains: DomainMap) -> "ConditionSolver":
        """A sibling solver over different domain declarations."""
        return ConditionSolver(
            domains,
            self.enumeration_limit,
            governor=self.governor,
            memo=self.memo,
            fast_path=self.fast_path,
        )
