"""Exact model enumeration for finite-domain conditions.

When every c-variable in a condition has a declared finite domain — the
common case in the paper (link states in {0,1}, enterprise attributes
over small enumerations) — satisfiability, implication, and equivalence
are decided *exactly* by backtracking enumeration with
substitute-and-fold pruning: after each assignment the condition is
partially evaluated, so contradictory branches are cut early.

This backend also powers the possible-worlds oracle used by the
loss-less-modeling tests and benchmarks.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence

from ..ctable.condition import Condition, FALSE, FalseCond, TRUE, TrueCond
from ..ctable.terms import Constant, CVariable
from .domains import DomainMap

__all__ = [
    "iter_models",
    "find_model",
    "count_models",
    "is_satisfiable_enum",
    "Assignment",
]

#: A total assignment of c-variables to constants.
Assignment = Dict[CVariable, Constant]


def _ordered_variables(
    condition: Condition,
    domains: DomainMap,
    variables: Optional[Iterable[CVariable]],
) -> List[CVariable]:
    if variables is None:
        vars_set: FrozenSet[CVariable] = condition.cvariables()
    else:
        vars_set = frozenset(variables)
    for v in vars_set:
        if not domains.domain_of(v).is_finite:
            raise ValueError(f"c-variable {v.name} has no finite domain; cannot enumerate")
    # Smallest domains first maximizes early pruning.
    return sorted(vars_set, key=lambda v: (domains.domain_of(v).size(), v.name))


def iter_models(
    condition: Condition,
    domains: DomainMap,
    variables: Optional[Iterable[CVariable]] = None,
    ticker=None,
) -> Iterator[Assignment]:
    """Yield every total assignment satisfying ``condition``.

    ``variables`` widens (or narrows — not recommended) the enumeration
    set; by default the condition's own c-variables are used.  All
    enumerated variables must have finite domains.  ``ticker`` is an
    optional :class:`~repro.robustness.governor.WorkTicket`-like object
    whose ``tick()`` is called once per search node, giving the governor
    a cooperative cancellation point inside the exponential loop.
    """
    order = _ordered_variables(condition, domains, variables)

    def recurse(idx: int, residual: Condition, partial: Assignment) -> Iterator[Assignment]:
        if ticker is not None:
            ticker.tick()
        if isinstance(residual, FalseCond):
            return
        if idx == len(order):
            if isinstance(residual, TrueCond) or residual.evaluate(partial):
                yield dict(partial)
            return
        var = order[idx]
        for value in domains.domain_of(var).values():
            partial[var] = value
            yield from recurse(idx + 1, residual.substitute({var: value}), partial)
        del partial[var]

    yield from recurse(0, condition, {})


def find_model(
    condition: Condition,
    domains: DomainMap,
    variables: Optional[Iterable[CVariable]] = None,
    ticker=None,
) -> Optional[Assignment]:
    """First satisfying assignment, or ``None`` when unsatisfiable."""
    for model in iter_models(condition, domains, variables, ticker=ticker):
        return model
    return None


def count_models(
    condition: Condition,
    domains: DomainMap,
    variables: Optional[Iterable[CVariable]] = None,
    ticker=None,
) -> int:
    """Number of satisfying total assignments."""
    return sum(1 for _ in iter_models(condition, domains, variables, ticker=ticker))


def is_satisfiable_enum(condition: Condition, domains: DomainMap) -> bool:
    """Exact satisfiability by enumeration (finite domains only)."""
    if isinstance(condition, TrueCond):
        return True
    if isinstance(condition, FalseCond):
        return False
    return find_model(condition, domains) is not None
