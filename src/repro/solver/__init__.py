"""Condition decision procedures — fauré's substitute for Z3.

The paper invokes Z3 in step (3) of its PostgreSQL pipeline to remove
tuples with contradictory conditions.  Z3 is unavailable offline, so this
package implements the decidable fragment fauré actually needs:

* :mod:`~repro.solver.domains` — per-c-variable domain declarations;
* :mod:`~repro.solver.theory` — conjunction-level consistency
  (equality/disequality union–find, finite-domain intersection,
  difference-logic orderings, interval linear reasoning);
* :mod:`~repro.solver.enumerate` — exact finite-domain model enumeration;
* :mod:`~repro.solver.dpll` — DPLL(T)-style branch-and-check for
  compound conditions over unbounded domains;
* :mod:`~repro.solver.interface` — the :class:`ConditionSolver` façade
  with caching and time accounting.
"""

from ..robustness.errors import BudgetExceeded, ConditionTooLarge, FaureError, SolverFailure
from ..robustness.governor import Governor
from ..robustness.verdict import Trivalent, Verdict
from .canonical import InternTable, canonicalize
from .domains import BOOL_DOMAIN, Domain, DomainMap, FiniteDomain, IntRange, Unbounded
from .enumerate import Assignment, count_models, find_model, iter_models
from .interface import SHARED_MEMO, ConditionSolver, SolverStats
from .memo import MemoTable, reset_shared_memo, shared_memo
from .minimize import MinimizeError, minimize
from .theory import UnsupportedCondition, check_conjunction

__all__ = [
    "FaureError",
    "BudgetExceeded",
    "SolverFailure",
    "ConditionTooLarge",
    "Governor",
    "Verdict",
    "Trivalent",
    "BOOL_DOMAIN",
    "Domain",
    "DomainMap",
    "FiniteDomain",
    "IntRange",
    "Unbounded",
    "Assignment",
    "count_models",
    "find_model",
    "iter_models",
    "ConditionSolver",
    "SolverStats",
    "SHARED_MEMO",
    "canonicalize",
    "InternTable",
    "MemoTable",
    "shared_memo",
    "reset_shared_memo",
    "MinimizeError",
    "minimize",
    "UnsupportedCondition",
    "check_conjunction",
]
