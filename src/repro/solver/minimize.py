"""Semantic condition minimization over finite domains.

Fixpoint evaluation composes conditions mechanically (matched tuple
conditions ∧ equalities ∧ comparisons), so derived conditions accumulate
redundancy — Table 3's ``(x̄=1 ∧ ȳ=1 ∧ z̄=1)`` rows may arrive as deeply
nested equivalents.  For finite-domain c-variables the *semantic* content
is just the satisfying assignment set, so we can re-synthesize a compact
equivalent:

1. enumerate the models over the condition's variables (cubes of one
   assignment each);
2. repeatedly merge cubes that differ in a single variable whose whole
   domain is covered (dropping that variable);
3. emit the disjunction of the surviving cubes.

The result is equivalent by construction (validated by the property
tests) and canonical enough for human display and structural dedup.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..ctable.condition import (
    Condition,
    FALSE,
    TRUE,
    conjoin,
    disjoin,
    eq,
)
from ..ctable.terms import Constant, CVariable
from .domains import DomainMap
from .enumerate import iter_models

__all__ = ["minimize", "cubes_of", "MinimizeError"]

#: A cube: per-variable value, or absent = "any value".
Cube = Tuple[Tuple[CVariable, Constant], ...]


class MinimizeError(ValueError):
    """Minimization impossible (unbounded domains, too many models)."""


def cubes_of(
    condition: Condition,
    domains: DomainMap,
    model_limit: int = 4096,
) -> Optional[List[Dict[CVariable, Constant]]]:
    """The satisfying assignments, or ``None`` when over the limit."""
    cvars = condition.cvariables()
    if not domains.all_finite(cvars):
        raise MinimizeError("minimization requires finite domains")
    size = domains.enumeration_size(cvars)
    if size is not None and size > model_limit:
        return None
    return list(iter_models(condition, domains))


def _merge_pass(
    cubes: Set[Cube], variables: Sequence[CVariable], domains: DomainMap
) -> Set[Cube]:
    """One round of cube merging; returns the (possibly) smaller set."""
    for var in variables:
        dom_values = set(domains.domain_of(var).values())
        groups: Dict[Cube, Set[Constant]] = {}
        for cube in cubes:
            entries = dict(cube)
            if var not in entries:
                continue
            value = entries.pop(var)
            rest = tuple(sorted(entries.items(), key=lambda kv: kv[0].name))
            groups.setdefault(rest, set()).add(value)
        for rest, values in groups.items():
            if values == dom_values:
                # the variable is irrelevant given `rest`: merge
                merged = set()
                for cube in cubes:
                    entries = dict(cube)
                    if var in entries:
                        value = entries.pop(var)
                        key = tuple(sorted(entries.items(), key=lambda kv: kv[0].name))
                        if key == rest:
                            continue  # absorbed
                    merged.add(cube)
                merged.add(rest)
                return merged
    return cubes


def _subsumption_pass(cubes: Set[Cube]) -> Set[Cube]:
    """Drop cubes implied by more general (smaller) cubes."""
    out: Set[Cube] = set()
    for cube in sorted(cubes, key=len):
        entries = dict(cube)
        if any(all(entries.get(v) == val for v, val in other) for other in out):
            continue
        out.add(cube)
    return out


def minimize(
    condition: Condition,
    domains: DomainMap,
    model_limit: int = 4096,
) -> Condition:
    """An equivalent, compact disjunction-of-conjunctions form.

    Falls back to the input unchanged when the model space exceeds
    ``model_limit`` (minimization is an optimization, never a
    requirement).
    """
    cvars = sorted(condition.cvariables(), key=lambda v: v.name)
    if not cvars:
        return condition
    models = cubes_of(condition, domains, model_limit)
    if models is None:
        return condition
    if not models:
        return FALSE
    total = domains.enumeration_size(cvars)
    if total is not None and len(models) == total:
        return TRUE
    cubes: Set[Cube] = {
        tuple(sorted(m.items(), key=lambda kv: kv[0].name)) for m in models
    }
    while True:
        merged = _merge_pass(cubes, cvars, domains)
        if merged == cubes:
            break
        cubes = merged
    cubes = _subsumption_pass(cubes)
    disjuncts = []
    for cube in sorted(cubes, key=lambda c: (len(c), str(c))):
        if not cube:
            return TRUE
        disjuncts.append(conjoin([eq(v, value) for v, value in cube]))
    return disjoin(disjuncts)
