"""Canonical normal forms and hash-consing for conditions.

Condition satisfiability is the NP-complete inner loop of every
fauré-log query, yet the solver's structural caches only recognise
*syntactically identical* conditions.  Semantically identical conditions
— the same atoms reordered, un-folded constants, ``x = 5 ∧ x ≥ 3``
versus ``x = 5`` — re-enter the decision machinery on every occurrence.
This module rewrites every condition into a **canonical form** so that
equivalence classes produced by mechanical condition composition
collapse to a single representative:

* negation is pushed to the atoms (atoms absorb it; no ``Not`` nodes
  survive);
* atoms are constant-folded and oriented (symmetric/order comparisons
  over two c-variables are flipped into a fixed orientation);
* within a conjunction, comparison literals over the same c-variable
  are *tightened*: duplicate and subsumed literals dropped, intervals
  intersected, ``x ≥ 5 ∧ x ≤ 5`` collapsed to ``x = 5``, contradictory
  literal sets collapsed to ``FALSE``;
* within a disjunction, the dual: intervals unioned, literals absorbed,
  tautological literal sets collapsed to ``TRUE``;
* absorption (``a ∧ (a ∨ b) → a`` and ``a ∨ (a ∧ b) → a``) is applied
  structurally;
* children of ``∧``/``∨`` are deduplicated and sorted under a total
  order, so the form is permutation-invariant.

Every rewrite is **domain-generic**: it is an equivalence over *any*
assignment of the c-variables (order reasoning is only applied when the
constants involved are mutually comparable), so the canonical form can
be used as a cache key regardless of the domain declarations in play —
the memo layer (:mod:`repro.solver.memo`) adds the domain fingerprint
to its keys separately.

The :class:`InternTable` hash-conses canonical conditions: structurally
equal canonical forms become the *same object*, which makes repeated
equality checks (fixpoint dedup, memo keys) effectively O(1) — Python's
tuple comparison short-circuits on identity for shared subtrees.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..ctable.condition import (
    And,
    Comparison,
    Condition,
    FALSE,
    FalseCond,
    LinearAtom,
    NEGATED_OP,
    Not,
    Op,
    Or,
    TRUE,
    TrueCond,
)
from ..ctable.terms import Constant, CVariable

__all__ = ["canonicalize", "InternTable"]

#: Flip map for re-orienting order comparisons (mirror of the private
#: table in :mod:`repro.ctable.condition`).
_FLIP: Dict[Op, Op] = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}

#: Class rank used by the total order over conditions.
_RANKS = {Comparison: 0, LinearAtom: 1, And: 2, Or: 3}


def _sort_key(cond: Condition) -> Tuple[int, str]:
    """A total order over canonical conditions (class rank, then repr)."""
    return (_RANKS.get(type(cond), 9), repr(cond))


class InternTable:
    """Bounded hash-consing table mapping conditions to shared objects.

    ``intern`` returns the previously stored structurally-equal
    condition when one exists, so equal canonical forms share identity.
    The table is bounded: past ``max_entries`` the oldest entries are
    evicted (canonicalization stays correct — eviction only loses
    sharing, never meaning).
    """

    __slots__ = ("max_entries", "_table", "hits", "misses", "evictions")

    def __init__(self, max_entries: int = 1 << 18):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._table: Dict[Condition, Condition] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._table)

    def intern(self, cond: Condition) -> Condition:
        if isinstance(cond, (TrueCond, FalseCond)):
            return TRUE if isinstance(cond, TrueCond) else FALSE
        got = self._table.get(cond)
        if got is not None:
            self.hits += 1
            return got
        self.misses += 1
        if len(self._table) >= self.max_entries:
            # dicts preserve insertion order: drop the oldest entry.
            self._table.pop(next(iter(self._table)))
            self.evictions += 1
        self._table[cond] = cond
        return cond

    def clear(self) -> None:
        self._table.clear()


# -- value comparability ----------------------------------------------------


def _is_numeric(value) -> bool:
    return isinstance(value, (int, float))


def _comparable(values: Sequence) -> bool:
    """True when order reasoning over these constants is well-defined."""
    all_numeric = True
    all_str = True
    for v in values:
        if all_numeric and not isinstance(v, (int, float)):
            all_numeric = False
        if all_str and not isinstance(v, str):
            all_str = False
        if not all_numeric and not all_str:
            return False
    return True


def _cmp(op: Op, a, b) -> bool:
    if op == "=":
        return a == b
    if op == "!=":
        return a != b
    if op == "<":
        return a < b
    if op == "<=":
        return a <= b
    if op == ">":
        return a > b
    return a >= b  # ">="


# -- per-variable literal groups --------------------------------------------


class _Group:
    """The ``var op constant`` literals of one c-variable, classified."""

    __slots__ = ("var", "eqs", "neqs", "lowers", "uppers")

    def __init__(self, var: CVariable):
        self.var = var
        self.eqs: List = []  # raw constant values
        self.neqs: List = []
        self.lowers: List[Tuple[object, bool]] = []  # (value, strict)
        self.uppers: List[Tuple[object, bool]] = []

    def add(self, op: Op, value) -> None:
        if op == "=":
            if value not in self.eqs:
                self.eqs.append(value)
        elif op == "!=":
            if value not in self.neqs:
                self.neqs.append(value)
        elif op == ">":
            self.lowers.append((value, True))
        elif op == ">=":
            self.lowers.append((value, False))
        elif op == "<":
            self.uppers.append((value, True))
        else:  # "<="
            self.uppers.append((value, False))

    def values(self) -> List:
        out = list(self.eqs) + list(self.neqs)
        out.extend(v for v, _ in self.lowers)
        out.extend(v for v, _ in self.uppers)
        return out

    # -- atom construction ------------------------------------------------

    def _atom(self, op: Op, value) -> Comparison:
        return Comparison(self.var, op, Constant(value))

    def _bound_atoms(self, lower, upper) -> List[Comparison]:
        out = []
        if lower is not None:
            out.append(self._atom(">" if lower[1] else ">=", lower[0]))
        if upper is not None:
            out.append(self._atom("<" if upper[1] else "<=", upper[0]))
        return out

    # -- conjunction tightening -------------------------------------------

    def tighten_and(self) -> Optional[List[Condition]]:
        """The tightened conjuncts for this variable; ``None`` means ⊥."""
        if len(self.eqs) == 1 and not self.neqs and not self.lowers and not self.uppers:
            # Dominant shape — one pinned equality.  The comparable and
            # the generic paths both reduce to exactly this atom, so the
            # classification work can be skipped outright.
            return [self._atom("=", self.eqs[0])]
        if not _comparable(self.values()):
            return self._generic_and()
        if len(self.eqs) >= 2:
            return None
        if self.eqs:
            v = self.eqs[0]
            if any(v == w for w in self.neqs):
                return None
            for c, strict in self.lowers:
                if v < c or (v == c and strict):
                    return None
            for c, strict in self.uppers:
                if v > c or (v == c and strict):
                    return None
            return [self._atom("=", v)]
        lower = None  # strongest: highest value, strict beats non-strict
        for c, strict in self.lowers:
            if lower is None or c > lower[0] or (c == lower[0] and strict):
                lower = (c, strict)
        upper = None  # strongest: lowest value, strict beats non-strict
        for c, strict in self.uppers:
            if upper is None or c < upper[0] or (c == upper[0] and strict):
                upper = (c, strict)
        if lower is not None and upper is not None:
            if lower[0] > upper[0]:
                return None
            if lower[0] == upper[0]:
                if lower[1] or upper[1]:
                    return None
                v = lower[0]  # x ≥ v ∧ x ≤ v  →  x = v
                if any(v == w for w in self.neqs):
                    return None
                return [self._atom("=", v)]
        neqs = []
        for v in self.neqs:
            if lower is not None:
                if v < lower[0]:
                    continue  # excluded by the bound already
                if v == lower[0]:
                    if lower[1]:
                        continue
                    lower = (lower[0], True)  # x ≥ v ∧ x ≠ v → x > v
                    continue
            if upper is not None:
                if v > upper[0]:
                    continue
                if v == upper[0]:
                    if upper[1]:
                        continue
                    upper = (upper[0], True)
                    continue
            neqs.append(v)
        out: List[Condition] = self._bound_atoms(lower, upper)
        out.extend(self._atom("!=", v) for v in neqs)
        return out

    def _generic_and(self) -> Optional[List[Condition]]:
        """Equality/disequality reasoning only (incomparable constants)."""
        if len(self.eqs) >= 2:
            return None
        order = self._bound_atoms_raw()
        if self.eqs:
            v = self.eqs[0]
            if any(v == w for w in self.neqs):
                return None
            return [self._atom("=", v)] + order
        return [self._atom("!=", v) for v in self.neqs] + order

    def _bound_atoms_raw(self) -> List[Comparison]:
        out = [self._atom(">" if s else ">=", v) for v, s in self.lowers]
        out.extend(self._atom("<" if s else "<=", v) for v, s in self.uppers)
        return out

    # -- disjunction weakening --------------------------------------------

    def tighten_or(self) -> Optional[List[Condition]]:
        """The weakened disjuncts for this variable; ``None`` means ⊤."""
        if not _comparable(self.values()):
            return self._generic_or()
        if len(self.neqs) >= 2:
            return None  # x ≠ a ∨ x ≠ b (a ≠ b) is a tautology
        if self.neqs:
            v = self.neqs[0]
            if any(v == w for w in self.eqs):
                return None  # x ≠ v ∨ x = v
            for c, strict in self.lowers:
                if _cmp(">" if strict else ">=", v, c):
                    return None  # the bound covers v → union is total
            for c, strict in self.uppers:
                if _cmp("<" if strict else "<=", v, c):
                    return None
            return [self._atom("!=", v)]  # everything else is absorbed
        lower = None  # weakest: lowest value, non-strict beats strict
        for c, strict in self.lowers:
            if lower is None or c < lower[0] or (c == lower[0] and not strict):
                lower = (c, strict)
        upper = None  # weakest: highest value, non-strict beats strict
        for c, strict in self.uppers:
            if upper is None or c > upper[0] or (c == upper[0] and not strict):
                upper = (c, strict)
        if lower is not None and upper is not None:
            if upper[0] > lower[0]:
                return None  # the two rays overlap → total
            if upper[0] == lower[0]:
                if not (lower[1] and upper[1]):
                    return None  # x ≤ v ∨ x ≥ v
                v = lower[0]  # x < v ∨ x > v  →  x ≠ v
                if any(v == w for w in self.eqs):
                    return None
                return [self._atom("!=", v)]
        out: List[Condition] = self._bound_atoms(lower, upper)
        for v in self.eqs:
            if lower is not None and _cmp(">" if lower[1] else ">=", v, lower[0]):
                continue  # x = v absorbed by the lower ray
            if upper is not None and _cmp("<" if upper[1] else "<=", v, upper[0]):
                continue
            out.append(self._atom("=", v))
        return out

    def _generic_or(self) -> Optional[List[Condition]]:
        if len(self.neqs) >= 2:
            return None
        order = self._bound_atoms_raw()
        if self.neqs:
            v = self.neqs[0]
            if any(v == w for w in self.eqs):
                return None
            return [self._atom("!=", v)] + order
        return [self._atom("=", v) for v in self.eqs] + order


# -- the canonicalizer ------------------------------------------------------


def _is_var_const(cond: Condition) -> bool:
    return (
        isinstance(cond, Comparison)
        and isinstance(cond.lhs, CVariable)
        and isinstance(cond.rhs, Constant)
    )


def _canon_comparison(cmp: Comparison) -> Condition:
    folded = cmp.constant_fold()
    if not isinstance(folded, Comparison):
        return folded
    # Orient symmetric-in-meaning order comparisons over two variables:
    # y > x and x < y must canonicalize identically.  (=/!= are already
    # oriented by the Comparison constructor.)
    if (
        folded.op not in ("=", "!=")
        and not isinstance(folded.rhs, Constant)
        and repr(folded.rhs) < repr(folded.lhs)
    ):
        folded = Comparison(folded.rhs, _FLIP[folded.op], folded.lhs)
    return folded


def _canon_linear(atom: LinearAtom) -> Condition:
    if not atom.coeffs:
        return TRUE if _cmp(atom.op, 0, atom.bound) else FALSE
    return atom


def _assemble(
    children: List[Condition],
    conjunction: bool,
    mk,
) -> Condition:
    """Shared ∧/∨ assembly: flatten, short-circuit, tighten, sort."""
    short = FALSE if conjunction else TRUE
    neutral = TRUE if conjunction else FALSE
    box = And if conjunction else Or

    flat: List[Condition] = []
    for child in children:
        if isinstance(child, type(short)):
            return short
        if isinstance(child, type(neutral)):
            continue
        if isinstance(child, box):
            flat.extend(child.children)
        else:
            flat.append(child)

    # Dedup structurally, then detect complementary atom pairs.  For
    # comparisons the complement test runs on (op, lhs, rhs) key tuples
    # — same structural identity as ``child.negate() in seen`` without
    # constructing a fresh negated atom per literal.
    seen = set()
    cmp_keys = set()
    lin_keys = set()
    uniq: List[Condition] = []
    for child in flat:
        if child not in seen:
            seen.add(child)
            uniq.append(child)
            if isinstance(child, Comparison):
                cmp_keys.add((child.op, child.lhs, child.rhs))
            elif isinstance(child, LinearAtom):
                lin_keys.add((child.coeffs, child.op, child.bound))
    for child in uniq:
        if isinstance(child, Comparison):
            if (NEGATED_OP[child.op], child.lhs, child.rhs) in cmp_keys:
                return short  # a ∧ ¬a → ⊥ / a ∨ ¬a → ⊤
        elif isinstance(child, LinearAtom):
            # Same structural identity as ``child.negate() in seen``
            # (negate flips only the operator) without rebuilding the
            # normalized atom per literal.
            if (child.coeffs, NEGATED_OP[child.op], child.bound) in lin_keys:
                return short

    # Per-variable literal tightening over var-op-constant comparisons.
    groups: Dict[CVariable, _Group] = {}
    rest: List[Condition] = []
    for child in uniq:
        if _is_var_const(child):
            groups.setdefault(child.lhs, _Group(child.lhs)).add(
                child.op, child.rhs.value
            )
        else:
            rest.append(child)
    tightened: List[Condition] = []
    for var in groups:
        out = groups[var].tighten_and() if conjunction else groups[var].tighten_or()
        if out is None:
            return short
        # Tightening builds fresh atoms; intern them so they share
        # identity with equal atoms from other conditions.
        tightened.extend(mk(c) for c in out)

    members: List[Condition] = []
    member_set = set()
    for child in tightened + rest:
        if child not in member_set:
            member_set.add(child)
            members.append(child)

    # Absorption: in a conjunction, a ∧ (a ∨ b) → a; dually for ∨.
    other = Or if conjunction else And
    kept: List[Condition] = []
    for child in members:
        if isinstance(child, other) and any(
            c in member_set for c in child.children
        ):
            continue
        kept.append(child)

    if not kept:
        return neutral
    if len(kept) == 1:
        return mk(kept[0])
    kept.sort(key=_sort_key)
    return mk(box(kept))


def canonicalize(condition: Condition, intern: Optional[InternTable] = None) -> Condition:
    """The canonical form of ``condition``.

    The result is equivalent to the input over every assignment of its
    c-variables, idempotent (``canonicalize(canonicalize(c)) ==
    canonicalize(c)``), and permutation-invariant (reordering ∧/∨
    children yields the identical form).  With an :class:`InternTable`,
    every node of the result is hash-consed so equal forms share
    identity.
    """

    def mk(cond: Condition) -> Condition:
        return intern.intern(cond) if intern is not None else cond

    def walk(cond: Condition) -> Condition:
        if isinstance(cond, (TrueCond, FalseCond)):
            return TRUE if isinstance(cond, TrueCond) else FALSE
        if isinstance(cond, Comparison):
            out = _canon_comparison(cond)
            return mk(out) if isinstance(out, Comparison) else out
        if isinstance(cond, LinearAtom):
            out = _canon_linear(cond)
            return mk(out) if isinstance(out, LinearAtom) else out
        if isinstance(cond, Not):
            # Push the negation through (atoms absorb it, ∧/∨ flip).
            return walk(cond.child.negate())
        if isinstance(cond, And):
            return _assemble([walk(c) for c in cond.children], True, mk)
        if isinstance(cond, Or):
            return _assemble([walk(c) for c in cond.children], False, mk)
        raise TypeError(f"cannot canonicalize {cond!r}")

    return walk(condition)
