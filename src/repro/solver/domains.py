"""Domain declarations for c-variables.

The paper's conditions constrain c-variables drawn from known attribute
domains — e.g. the link-state variables ``x̄, ȳ, z̄ ∈ {0, 1}`` of §4, or
the subnet domain ``{Mkt, R&D}`` of §5.  A :class:`DomainMap` records,
per c-variable, which values it may take.  Variables without a declared
domain default to an *unbounded* domain of the given kind.

Finite domains unlock the exact model-enumeration backend of
:mod:`repro.solver.enumerate`; unbounded domains are handled by the
propagation-based theory solver.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from ..ctable.terms import Constant, CVariable

__all__ = ["Domain", "FiniteDomain", "IntRange", "Unbounded", "DomainMap", "BOOL_DOMAIN"]


class Domain:
    """Abstract domain of values a c-variable may assume."""

    __slots__ = ()

    @property
    def is_finite(self) -> bool:
        raise NotImplementedError

    def values(self) -> Tuple[Constant, ...]:
        """Enumerate the domain (finite domains only)."""
        raise NotImplementedError

    def raw_values(self) -> Tuple:
        """Enumerate the domain as raw payloads (finite domains only)."""
        return tuple(const.value for const in self.values())

    def contains(self, value) -> bool:
        """Membership test for a raw Python value."""
        raise NotImplementedError

    def size(self) -> Optional[int]:
        """Cardinality, or ``None`` when unbounded."""
        raise NotImplementedError


class FiniteDomain(Domain):
    """An explicit finite set of values."""

    __slots__ = ("_values", "_raw", "_raw_set", "numeric", "_sorted_raw")

    def __init__(self, values: Iterable):
        vals = []
        seen = set()
        for v in values:
            const = v if isinstance(v, Constant) else Constant(v)
            if const not in seen:
                seen.add(const)
                vals.append(const)
        if not vals:
            raise ValueError("finite domain must be non-empty")
        self._values: Tuple[Constant, ...] = tuple(vals)
        self._raw: Tuple = tuple(const.value for const in self._values)
        # O(1) membership for the solver's candidate scans.  Hash
        # equality coincides with ``==`` for the payload types Constant
        # admits (equal values hash equal across int/float/bool).
        self._raw_set: FrozenSet = frozenset(self._raw)
        numeric = True
        for v in self._raw:
            if not isinstance(v, (int, float)) or isinstance(v, bool):
                numeric = False
                break
        #: Whether every payload is a non-bool number (solver fast path).
        self.numeric: bool = numeric
        self._sorted_raw: Tuple = (
            tuple(sorted(self._raw)) if numeric and len(self._raw) > 1 else self._raw
        )

    @property
    def is_finite(self) -> bool:
        return True

    def values(self) -> Tuple[Constant, ...]:
        return self._values

    def raw_values(self) -> Tuple:
        return self._raw

    def contains(self, value) -> bool:
        const = value if isinstance(value, Constant) else Constant(value)
        return const in self._values

    def admits_raw(self, value) -> bool:
        """``==``-membership for a raw payload, set-backed when hashable."""
        try:
            return value in self._raw_set
        except TypeError:  # unhashable payload: fall back to the == scan
            return value in self._raw

    def sorted_raw(self) -> Tuple:
        """Raw payloads, ascending when all-numeric (declaration order
        otherwise) — the candidate order the solver fast path expects."""
        return self._sorted_raw

    def size(self) -> int:
        return len(self._values)

    def __eq__(self, other) -> bool:
        return isinstance(other, FiniteDomain) and set(self._values) == set(other._values)

    def __hash__(self) -> int:
        return hash(frozenset(self._values))

    def __repr__(self) -> str:
        return f"FiniteDomain({[v.value for v in self._values]!r})"


class IntRange(Domain):
    """Integers in ``[lo, hi]`` inclusive — finite, but compactly stored."""

    __slots__ = ("lo", "hi", "_cached", "_raw_cached")

    def __init__(self, lo: int, hi: int):
        if lo > hi:
            raise ValueError(f"empty integer range [{lo}, {hi}]")
        self.lo = int(lo)
        self.hi = int(hi)
        self._cached: Optional[Tuple[Constant, ...]] = None
        self._raw_cached: Optional[Tuple] = None

    @property
    def is_finite(self) -> bool:
        return True

    def values(self) -> Tuple[Constant, ...]:
        if self._cached is None:
            self._cached = tuple(Constant(i) for i in range(self.lo, self.hi + 1))
        return self._cached

    def raw_values(self) -> Tuple:
        if self._raw_cached is None:
            self._raw_cached = tuple(range(self.lo, self.hi + 1))
        return self._raw_cached

    def contains(self, value) -> bool:
        if isinstance(value, Constant):
            value = value.value
        return isinstance(value, int) and not isinstance(value, bool) and self.lo <= value <= self.hi

    def size(self) -> int:
        return self.hi - self.lo + 1

    def __eq__(self, other) -> bool:
        return isinstance(other, IntRange) and (self.lo, self.hi) == (other.lo, other.hi)

    def __hash__(self) -> int:
        return hash(("intrange", self.lo, self.hi))

    def __repr__(self) -> str:
        return f"IntRange({self.lo}, {self.hi})"


class Unbounded(Domain):
    """An unbounded domain of a given kind (``'string'``, ``'int'``, ...).

    The kind is advisory; it only gates which comparison operators the
    theory solver accepts (ordering needs numerics).
    """

    __slots__ = ("kind",)

    def __init__(self, kind: str = "any"):
        self.kind = kind

    @property
    def is_finite(self) -> bool:
        return False

    def values(self):
        raise ValueError("cannot enumerate an unbounded domain")

    def contains(self, value) -> bool:
        return True

    def size(self) -> None:
        return None

    def __eq__(self, other) -> bool:
        return isinstance(other, Unbounded) and self.kind == other.kind

    def __hash__(self) -> int:
        return hash(("unbounded", self.kind))

    def __repr__(self) -> str:
        return f"Unbounded({self.kind!r})"


#: The {0, 1} link-state domain of §4.
BOOL_DOMAIN = FiniteDomain([0, 1])


class DomainMap:
    """Per-c-variable domain declarations with a configurable default."""

    def __init__(
        self,
        mapping: Optional[Mapping[CVariable, Domain]] = None,
        default: Optional[Domain] = None,
    ):
        self._map: Dict[CVariable, Domain] = {}
        if mapping:
            for var, dom in mapping.items():
                self.declare(var, dom)
        self._default = default if default is not None else Unbounded()

    def declare(self, var, domain) -> None:
        """Declare (or re-declare) the domain of a c-variable.

        ``var`` may be a :class:`CVariable` or a bare name; ``domain`` may
        be a :class:`Domain` or an iterable of raw values (treated as a
        finite domain).
        """
        if isinstance(var, str):
            var = CVariable(var)
        if not isinstance(var, CVariable):
            raise TypeError(f"expected CVariable, got {var!r}")
        if not isinstance(domain, Domain):
            domain = FiniteDomain(domain)
        self._map[var] = domain

    def domain_of(self, var: CVariable) -> Domain:
        """The declared domain, or the default when undeclared."""
        return self._map.get(var, self._default)

    def declared(self) -> FrozenSet[CVariable]:
        return frozenset(self._map)

    def all_finite(self, variables: Iterable[CVariable]) -> bool:
        """True when every listed variable has a finite domain."""
        return all(self.domain_of(v).is_finite for v in variables)

    def enumeration_size(self, variables: Iterable[CVariable]) -> Optional[int]:
        """Product of domain sizes, or ``None`` if any is unbounded."""
        total = 1
        for v in variables:
            size = self.domain_of(v).size()
            if size is None:
                return None
            total *= size
        return total

    def fingerprint(self, variables: Iterable[CVariable]) -> Tuple:
        """Hashable signature of the domains of the listed variables.

        Two domain maps that agree on ``variables`` produce the same
        fingerprint, so solver verdicts memoized under it are shared
        exactly when they are sound to share (undeclared variables
        contribute the map's default domain).
        """
        return tuple(
            sorted(
                ((v.name, self.domain_of(v)) for v in set(variables)),
                key=lambda pair: pair[0],
            )
        )

    def copy(self) -> "DomainMap":
        clone = DomainMap(default=self._default)
        clone._map = dict(self._map)
        return clone

    def merged_with(self, other: "DomainMap") -> "DomainMap":
        """New map with ``other``'s declarations taking precedence."""
        clone = self.copy()
        clone._map.update(other._map)
        return clone

    def __contains__(self, var: CVariable) -> bool:
        return var in self._map

    def __len__(self) -> int:
        return len(self._map)

    def __repr__(self) -> str:
        return f"DomainMap({{{', '.join(f'{v.name}: {d!r}' for v, d in self._map.items())}}})"
