"""The process-wide phase-accounting clock.

Every sql/solver phase measurement (``engine.stats.Stopwatch``, the
evaluator's phase split, the solver's ``time_seconds``) reads time
through :func:`phase_clock`.  The parent process keeps wall time
(``perf_counter``); pool worker initializers switch their process to CPU
time (``process_time``) via :func:`use_cpu_clock` — on a timeshared
host, a worker's wall clock keeps running while the worker is
descheduled, so per-worker wall *sums* overstate the actual work by up
to the worker count (the "summed sql_s exceeds wall_s" artifact in early
BENCH_parallel rows).  CPU time is additive across workers, so summed
worker phase times are comparable to a serial run's.

The clock lives in a dict so the executors' inline-state guard can
snapshot/restore it around in-parent initializer runs (see
:data:`repro.parallel.worker.INLINE_STATE_DICTS`).  This module must
stay dependency-free: it is imported from both the engine and the
solver, below every package ``__init__``.
"""

from __future__ import annotations

import time

__all__ = ["phase_clock", "use_cpu_clock", "_CLOCK"]

_CLOCK = {"now": time.perf_counter}


def phase_clock() -> float:
    """Current reading of the phase-accounting clock."""
    return _CLOCK["now"]()


def use_cpu_clock() -> None:
    """Switch this process's phase accounting to CPU time (worker-side)."""
    _CLOCK["now"] = time.process_time
